"""Host-side API: build programs, move buffers, launch kernels.

Mirrors the tt-metal host workflow the paper's host code uses::

    program = Program(device)
    cb_in = CreateCircularBuffer(program, core, CB_IN0, page_size=2048, n_pages=4)
    CreateKernel(program, reader_kernel, core, DATA_MOVER_0, args={...})
    CreateKernel(program, compute_kernel, core, COMPUTE, args={...})
    EnqueueWriteBuffer(device, buf, host_data)
    handle = EnqueueProgram(device, program)
    Finish(device)
    result = EnqueueReadBuffer(device, buf)

``EnqueueProgram`` spawns one simulator process per kernel;
``Finish`` drives the device's clock until all of them complete and
returns the program's wall time.  Host↔DRAM transfers ride the PCIe
server, so reported solve times can include transfer overhead exactly as
the paper's measurements do.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.arch.device import GrayskullDevice
from repro.arch.tensix import COMPUTE, DATA_MOVER_0, DATA_MOVER_1, TensixCore
from repro.lint.findings import LintError, LintWarning
from repro.sim import Process, SimulationError
from repro.ttmetal.buffers import Buffer
from repro.ttmetal.kernel_api import ComputeCtx, DataMoverCtx

__all__ = [
    "Program",
    "ProgramHandle",
    "CoreStall",
    "DeviceHangError",
    "PcieTransferError",
    "LintError",
    "LintWarning",
    "CreateKernel",
    "CreateCircularBuffer",
    "CreateSemaphore",
    "EnqueueWriteBuffer",
    "EnqueueReadBuffer",
    "EnqueueProgram",
    "Finish",
]

#: default retry budget for host↔DRAM transfers on detected corruption.
PCIE_MAX_RETRIES = 4


@dataclass(frozen=True)
class CoreStall:
    """One stalled kernel process in a watchdog report."""

    core: tuple                 #: (x, y) coordinate of the Tensix core
    slot: str                   #: dm0 / dm1 / compute
    kernel: str                 #: process name
    waiting_on: str             #: name of the event the process is blocked on
    since_s: float              #: simulated time the wait started

    def describe(self) -> str:
        return (f"core {self.core}/{self.slot}: {self.kernel} waiting on "
                f"{self.waiting_on} since t={self.since_s:g}s")


class DeviceHangError(SimulationError):
    """``Finish(device, timeout_s=...)``'s watchdog fired.

    Carries a structured per-core stall report (:attr:`stalls`) naming
    every kernel process that had not completed when the simulated
    timeout expired, and what each was waiting on.
    """

    def __init__(self, stalls: List[CoreStall], t: float, timeout_s: float):
        self.stalls = list(stalls)
        self.t = t
        self.timeout_s = timeout_s
        cores = sorted({s.core for s in self.stalls})
        lines = [f"device hang: {len(self.stalls)} kernel process(es) on "
                 f"core(s) {cores} still stalled after "
                 f"{timeout_s:g}s (t={t:g}s)"]
        lines += [f"  - {s.describe()}" for s in self.stalls]
        super().__init__("\n".join(lines))


class PcieTransferError(RuntimeError):
    """A host↔DRAM transfer kept failing its integrity check after retries."""

KernelFn = Callable[..., object]  # generator function taking a ctx


@dataclass
class _KernelSpec:
    fn: KernelFn
    core: TensixCore
    slot: str
    args: Dict
    #: memoised launch state ``(device, merged_args, process_name)`` —
    #: re-enqueueing the same program skips the runtime-arg merge and the
    #: process-name formatting (see :func:`_prepare_launch`).
    launch_cache: Optional[tuple] = None


@dataclass(frozen=True)
class _CbSpec:
    """One CreateCircularBuffer record (consumed by ``repro.lint``)."""

    core: TensixCore
    cb_id: int
    page_size: int
    n_pages: int
    dtype: str


@dataclass(frozen=True)
class _SemSpec:
    """One CreateSemaphore record (consumed by ``repro.lint``)."""

    core: TensixCore
    sem_id: int
    initial: int


@dataclass
class ProgramHandle:
    """A launched program: its processes and start time."""

    program: "Program"
    processes: List[Process]
    t_start: float
    t_end: Optional[float] = None
    #: kernel specs aligned with :attr:`processes` (for stall reports).
    kernel_specs: Optional[List[_KernelSpec]] = None

    @property
    def duration_s(self) -> float:
        if self.t_end is None:
            raise RuntimeError("program not finished; call Finish(device)")
        return self.t_end - self.t_start


class Program:
    """A set of kernels bound to cores, plus their CB/semaphore config."""

    def __init__(self, device: GrayskullDevice):
        self.device = device
        self.kernels: List[_KernelSpec] = []
        self.circular_buffers: List[_CbSpec] = []
        self.semaphores: List[_SemSpec] = []

    @property
    def cores(self) -> List[TensixCore]:
        seen = {}
        for spec in self.kernels:
            seen[spec.core.coord] = spec.core
        return list(seen.values())


def CreateKernel(program: Program, fn: KernelFn,
                 core: Union[TensixCore, Sequence[TensixCore]],
                 slot: str, args: Optional[Dict] = None) -> None:
    """Bind a kernel generator function to one or more cores.

    ``slot`` is one of ``DATA_MOVER_0`` / ``DATA_MOVER_1`` / ``COMPUTE``.
    ``args`` become the kernel's runtime arguments (``ctx.arg(name)``);
    pass a per-core dict by calling once per core.
    """
    if slot not in (DATA_MOVER_0, DATA_MOVER_1, COMPUTE):
        raise ValueError(f"unknown kernel slot {slot!r}")
    cores = [core] if isinstance(core, TensixCore) else list(core)
    for c in cores:
        if not c.is_worker:
            raise ValueError(f"core {c.coord} is storage-only; kernels "
                             "may only run on worker cores")
        if any(s.core is c and s.slot == slot for s in program.kernels):
            raise ValueError(f"core {c.coord} already has a {slot} kernel")
        program.kernels.append(_KernelSpec(fn, c, slot, dict(args or {})))


def CreateCircularBuffer(program: Program,
                         core: Union[TensixCore, Sequence[TensixCore]],
                         cb_id: int, page_size: int, n_pages: int,
                         dtype: str = "bf16") -> None:
    """Configure a circular buffer on one or more cores.

    ``dtype``: "bf16" (Grayskull) or "fp32" (the Wormhole-precision mode
    the paper's future work targets).
    """
    cores = [core] if isinstance(core, TensixCore) else list(core)
    for c in cores:
        c.create_cb(cb_id, page_size, n_pages, dtype=dtype)
        program.circular_buffers.append(
            _CbSpec(c, cb_id, page_size, n_pages, dtype))


def CreateSemaphore(program: Program,
                    core: Union[TensixCore, Sequence[TensixCore]],
                    sem_id: int, initial: int = 0) -> None:
    """Configure a semaphore on one or more cores."""
    cores = [core] if isinstance(core, TensixCore) else list(core)
    for c in cores:
        c.create_semaphore(sem_id, initial)
        program.semaphores.append(_SemSpec(c, sem_id, initial))


def _pcie_corruption(device: GrayskullDevice,
                     nbytes: int) -> Optional[tuple[int, int]]:
    """Ask the installed fault injector (if any) whether this transfer is
    corrupted; returns ``(byte_offset, bit)`` or ``None``."""
    injector = getattr(device, "fault_injector", None)
    if injector is None:
        return None
    return injector.corrupt_pcie(nbytes)


def _pcie_backoff(device: GrayskullDevice, attempt: int) -> None:
    """Exponential backoff between transfer retries, in simulated time."""
    delay = device.costs.pcie_latency * (2 ** attempt)
    injector = getattr(device, "fault_injector", None)
    if injector is not None:
        injector.record_pcie_retry(attempt, delay)
    device.sim.run(until=device.sim.timeout(delay))


def EnqueueWriteBuffer(device: GrayskullDevice, buf: Buffer,
                       data: np.ndarray, blocking: bool = True,
                       max_retries: int = PCIE_MAX_RETRIES) -> float:
    """Host → DRAM transfer over PCIe; returns the transfer time.

    If an installed fault injector corrupts the transfer, the host-side
    integrity check (modelling the link CRC) detects it and the transfer
    is retried with exponential backoff — up to ``max_retries`` times,
    after which :class:`PcieTransferError` is raised.  Non-blocking
    transfers cannot be verified and keep their corruption.
    """
    payload = np.ascontiguousarray(data)
    if payload.nbytes > buf.size:
        raise ValueError(
            f"payload of {payload.nbytes} B exceeds buffer of {buf.size} B")
    t0 = device.sim.now
    attempt = 0
    while True:
        corruption = _pcie_corruption(device, payload.nbytes)
        if corruption is None:
            buf.write_host(payload)
        else:
            bad = payload.view(np.uint8).ravel().copy()
            off, bit = corruption
            bad[off % bad.size] ^= np.uint8(1 << bit)
            buf.write_host(bad)
        ev = device.pcie.submit(payload.nbytes)
        if blocking:
            device.sim.run(until=ev)
        if corruption is None or not blocking:
            break
        attempt += 1
        if attempt > max_retries:
            raise PcieTransferError(
                f"host→DRAM transfer of {payload.nbytes} B failed its "
                f"integrity check {attempt} times")
        _pcie_backoff(device, attempt)
    return device.sim.now - t0


def EnqueueReadBuffer(device: GrayskullDevice, buf: Buffer,
                      offset: int = 0, size: Optional[int] = None,
                      blocking: bool = True,
                      max_retries: int = PCIE_MAX_RETRIES) -> np.ndarray:
    """DRAM → host transfer over PCIe; returns the bytes.

    Injected transfer corruption is detected by the host CRC check and
    re-read with exponential backoff, like the write path.
    """
    attempt = 0
    while True:
        out = buf.read_host(offset, size)
        corruption = _pcie_corruption(device, out.nbytes)
        if corruption is not None:
            off, bit = corruption
            out[off % out.size] ^= np.uint8(1 << bit)
        ev = device.pcie.submit(out.nbytes)
        if blocking:
            device.sim.run(until=ev)
        if corruption is None or not blocking:
            return out
        attempt += 1
        if attempt > max_retries:
            raise PcieTransferError(
                f"DRAM→host transfer of {out.nbytes} B failed its "
                f"integrity check {attempt} times")
        _pcie_backoff(device, attempt)


def _prepare_launch(spec: _KernelSpec, device: GrayskullDevice) -> tuple:
    """Memoised per-kernel launch setup: merged runtime args + process name.

    The merged dict is safe to share across launches because every kernel
    context copies it on construction; the cache is keyed on the device so
    a spec enqueued on a different device is re-prepared.
    """
    cache = spec.launch_cache
    if cache is None or cache[0] is not device:
        args = dict(spec.args)
        args.setdefault("_device", device)
        name = (f"{getattr(spec.fn, '__name__', 'kernel')}@"
                f"{spec.core.coord}/{spec.slot}")
        cache = spec.launch_cache = (device, args, name)
    return cache


def _make_ctx(spec: _KernelSpec, device: GrayskullDevice):
    _device, args, _name = _prepare_launch(spec, device)
    if spec.slot == COMPUTE:
        return ComputeCtx(spec.core, args)
    return DataMoverCtx(spec.core, spec.slot, args)


def _maybe_lint(program: Program, mode: Optional[str]) -> None:
    """Run the static verifier over ``program`` per the lint mode.

    ``mode`` is ``"off"``/``"warn"``/``"strict"``; ``None`` falls back to
    the ``REPRO_LINT`` environment variable (default ``"warn"``).  Warn
    mode emits one aggregated :class:`LintWarning`; strict mode raises
    :class:`LintError` on any finding.  When a ``repro.lint.capture()``
    block is active, findings are routed there instead.  Lint-internal
    failures never break a run.
    """
    if mode is None:
        mode = os.environ.get("REPRO_LINT", "warn")
    if mode not in ("off", "warn", "strict"):
        raise ValueError(f"unknown lint mode {mode!r} "
                         "(expected 'off', 'warn' or 'strict')")
    if mode == "off":
        return
    from repro import lint as _lint
    try:
        report = _lint.lint_program(program)
    except Exception as exc:  # the verifier must never break a launch
        warnings.warn(f"repro.lint failed on this program: {exc!r}",
                      RuntimeWarning, stacklevel=3)
        return
    if not report:
        return
    if _lint.deliver(report):
        return
    if mode == "strict":
        raise LintError(report)
    warnings.warn("\n" + report.render(), LintWarning, stacklevel=3)


def EnqueueProgram(device: GrayskullDevice, program: Program,
                   lint: Optional[str] = None) -> ProgramHandle:
    """Launch every kernel of ``program`` as a simulator process.

    ``lint`` selects the static-verifier mode (``"off"``, ``"warn"``,
    ``"strict"``); ``None`` defers to ``REPRO_LINT`` (default: warn).
    """
    if not program.kernels:
        raise ValueError("program has no kernels")
    _maybe_lint(program, lint)
    procs: List[Process] = []
    for spec in program.kernels:
        _device, args, name = _prepare_launch(spec, device)
        if spec.slot == COMPUTE:
            ctx = ComputeCtx(spec.core, args)
        else:
            ctx = DataMoverCtx(spec.core, spec.slot, args)
        procs.append(device.sim.process(spec.fn(ctx), name=name))
    device.energy.set_active_cores(len(program.cores))
    handle = ProgramHandle(program=program, processes=procs,
                           t_start=device.sim.now,
                           kernel_specs=list(program.kernels))
    if not hasattr(device, "_pending_programs"):
        device._pending_programs = []  # type: ignore[attr-defined]
    device._pending_programs.append(handle)  # type: ignore[attr-defined]
    return handle


def _stall_report(pending: List[ProgramHandle]) -> List[CoreStall]:
    """Per-core stall report over every still-alive kernel process."""
    stalls: List[CoreStall] = []
    for handle in pending:
        specs = handle.kernel_specs or [None] * len(handle.processes)
        for proc, spec in zip(handle.processes, specs):
            if not proc.is_alive:
                continue
            target = proc._waiting_on
            waiting = (target.name or repr(target)) if target is not None \
                else "(never resumed)"
            stalls.append(CoreStall(
                core=spec.core.coord if spec is not None else (-1, -1),
                slot=spec.slot if spec is not None else "?",
                kernel=proc.name,
                waiting_on=waiting,
                since_s=proc._wait_since))
    return stalls


def _abort_hung(device: GrayskullDevice, pending: List[ProgramHandle],
                timeout_s: float) -> None:
    """Watchdog action: interrupt stranded kernels, raise the hang report."""
    stalls = _stall_report(pending)
    for handle in pending:
        for proc in handle.processes:
            if proc.is_alive:
                # Join the process first so its (intentional) death is not
                # reported as an unhandled crash, then interrupt it.
                proc.add_callback(lambda _e: None)
                proc.interrupt(cause="watchdog")
    # Drain the interrupt pokes so the kernel generators unwind now.
    try:
        device.sim.run(max_events=100_000)
    except SimulationError:  # pragma: no cover - defensive
        pass
    device._pending_programs = []  # type: ignore[attr-defined]
    device.energy.set_active_cores(0)
    raise DeviceHangError(stalls, t=device.sim.now, timeout_s=timeout_s)


def Finish(device: GrayskullDevice,
           max_events: Optional[int] = None,
           timeout_s: Optional[float] = None) -> float:
    """Run the device until all enqueued programs complete.

    Returns the wall time since the earliest unfinished program started.

    ``timeout_s`` arms a watchdog: if any kernel process is still alive
    after that much *simulated* time (or the simulation deadlocks before
    then), every stranded process is interrupted (via
    :meth:`repro.sim.Process.interrupt`) and :class:`DeviceHangError` is
    raised with a per-core stall report.
    """
    pending: List[ProgramHandle] = getattr(device, "_pending_programs", [])
    if not pending:
        return 0.0
    t0 = min(h.t_start for h in pending)
    if timeout_s is None:
        for handle in pending:
            for proc in handle.processes:
                device.sim.run(until=proc, max_events=max_events)
            handle.t_end = device.sim.now
        device._pending_programs = []  # type: ignore[attr-defined]
        device.energy.set_active_cores(0)
        return device.sim.now - t0

    sim = device.sim
    procs = [p for h in pending for p in h.processes]
    gate = sim.all_of(procs)
    deadline = sim.timeout(timeout_s)
    race = sim.any_of([gate, deadline])
    try:
        idx, _ = sim.run(until=race, max_events=max_events)
    except SimulationError as exc:
        if "deadlock" in str(exc):
            # The queue drained with kernels stranded before the deadline:
            # a hard hang — same watchdog action, reported immediately.
            _abort_hung(device, pending, timeout_s)
        raise
    except BaseException as exc:
        crashed = [p for p in procs if p.triggered and not p._ok]
        name = crashed[0].name if crashed else "<unknown>"
        raise SimulationError(
            f"process {name!r} crashed at t={sim.now:g}s") from exc
    if idx == 1:  # the deadline beat the kernels
        _abort_hung(device, pending, timeout_s)
    for handle in pending:
        handle.t_end = sim.now
    device._pending_programs = []  # type: ignore[attr-defined]
    device.energy.set_active_cores(0)
    return sim.now - t0
