"""Host-side API: build programs, move buffers, launch kernels.

Mirrors the tt-metal host workflow the paper's host code uses::

    program = Program(device)
    cb_in = CreateCircularBuffer(program, core, CB_IN0, page_size=2048, n_pages=4)
    CreateKernel(program, reader_kernel, core, DATA_MOVER_0, args={...})
    CreateKernel(program, compute_kernel, core, COMPUTE, args={...})
    EnqueueWriteBuffer(device, buf, host_data)
    handle = EnqueueProgram(device, program)
    Finish(device)
    result = EnqueueReadBuffer(device, buf)

``EnqueueProgram`` spawns one simulator process per kernel;
``Finish`` drives the device's clock until all of them complete and
returns the program's wall time.  Host↔DRAM transfers ride the PCIe
server, so reported solve times can include transfer overhead exactly as
the paper's measurements do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.arch.device import GrayskullDevice
from repro.arch.tensix import COMPUTE, DATA_MOVER_0, DATA_MOVER_1, TensixCore
from repro.sim import Process
from repro.ttmetal.buffers import Buffer
from repro.ttmetal.kernel_api import ComputeCtx, DataMoverCtx

__all__ = [
    "Program",
    "ProgramHandle",
    "CreateKernel",
    "CreateCircularBuffer",
    "CreateSemaphore",
    "EnqueueWriteBuffer",
    "EnqueueReadBuffer",
    "EnqueueProgram",
    "Finish",
]

KernelFn = Callable[..., object]  # generator function taking a ctx


@dataclass
class _KernelSpec:
    fn: KernelFn
    core: TensixCore
    slot: str
    args: Dict


@dataclass
class ProgramHandle:
    """A launched program: its processes and start time."""

    program: "Program"
    processes: List[Process]
    t_start: float
    t_end: Optional[float] = None

    @property
    def duration_s(self) -> float:
        if self.t_end is None:
            raise RuntimeError("program not finished; call Finish(device)")
        return self.t_end - self.t_start


class Program:
    """A set of kernels bound to cores, plus their CB/semaphore config."""

    def __init__(self, device: GrayskullDevice):
        self.device = device
        self.kernels: List[_KernelSpec] = []

    @property
    def cores(self) -> List[TensixCore]:
        seen = {}
        for spec in self.kernels:
            seen[spec.core.coord] = spec.core
        return list(seen.values())


def CreateKernel(program: Program, fn: KernelFn,
                 core: Union[TensixCore, Sequence[TensixCore]],
                 slot: str, args: Optional[Dict] = None) -> None:
    """Bind a kernel generator function to one or more cores.

    ``slot`` is one of ``DATA_MOVER_0`` / ``DATA_MOVER_1`` / ``COMPUTE``.
    ``args`` become the kernel's runtime arguments (``ctx.arg(name)``);
    pass a per-core dict by calling once per core.
    """
    if slot not in (DATA_MOVER_0, DATA_MOVER_1, COMPUTE):
        raise ValueError(f"unknown kernel slot {slot!r}")
    cores = [core] if isinstance(core, TensixCore) else list(core)
    for c in cores:
        if not c.is_worker:
            raise ValueError(f"core {c.coord} is storage-only; kernels "
                             "may only run on worker cores")
        if any(s.core is c and s.slot == slot for s in program.kernels):
            raise ValueError(f"core {c.coord} already has a {slot} kernel")
        program.kernels.append(_KernelSpec(fn, c, slot, dict(args or {})))


def CreateCircularBuffer(program: Program,
                         core: Union[TensixCore, Sequence[TensixCore]],
                         cb_id: int, page_size: int, n_pages: int,
                         dtype: str = "bf16") -> None:
    """Configure a circular buffer on one or more cores.

    ``dtype``: "bf16" (Grayskull) or "fp32" (the Wormhole-precision mode
    the paper's future work targets).
    """
    cores = [core] if isinstance(core, TensixCore) else list(core)
    for c in cores:
        c.create_cb(cb_id, page_size, n_pages, dtype=dtype)


def CreateSemaphore(program: Program,
                    core: Union[TensixCore, Sequence[TensixCore]],
                    sem_id: int, initial: int = 0) -> None:
    """Configure a semaphore on one or more cores."""
    cores = [core] if isinstance(core, TensixCore) else list(core)
    for c in cores:
        c.create_semaphore(sem_id, initial)


def EnqueueWriteBuffer(device: GrayskullDevice, buf: Buffer,
                       data: np.ndarray, blocking: bool = True) -> float:
    """Host → DRAM transfer over PCIe; returns the transfer time."""
    payload = np.ascontiguousarray(data)
    if payload.nbytes > buf.size:
        raise ValueError(
            f"payload of {payload.nbytes} B exceeds buffer of {buf.size} B")
    buf.write_host(payload)
    ev = device.pcie.submit(payload.nbytes)
    t0 = device.sim.now
    if blocking:
        device.sim.run(until=ev)
    return device.sim.now - t0


def EnqueueReadBuffer(device: GrayskullDevice, buf: Buffer,
                      offset: int = 0, size: Optional[int] = None,
                      blocking: bool = True) -> np.ndarray:
    """DRAM → host transfer over PCIe; returns the bytes."""
    out = buf.read_host(offset, size)
    ev = device.pcie.submit(out.nbytes)
    if blocking:
        device.sim.run(until=ev)
    return out


def _make_ctx(spec: _KernelSpec, device: GrayskullDevice):
    args = dict(spec.args)
    args.setdefault("_device", device)
    if spec.slot == COMPUTE:
        return ComputeCtx(spec.core, args)
    return DataMoverCtx(spec.core, spec.slot, args)


def EnqueueProgram(device: GrayskullDevice, program: Program) -> ProgramHandle:
    """Launch every kernel of ``program`` as a simulator process."""
    if not program.kernels:
        raise ValueError("program has no kernels")
    procs: List[Process] = []
    for spec in program.kernels:
        ctx = _make_ctx(spec, device)
        gen = spec.fn(ctx)
        name = (f"{getattr(spec.fn, '__name__', 'kernel')}@"
                f"{spec.core.coord}/{spec.slot}")
        procs.append(device.sim.process(gen, name=name))
    device.energy.set_active_cores(len(program.cores))
    handle = ProgramHandle(program=program, processes=procs,
                           t_start=device.sim.now)
    if not hasattr(device, "_pending_programs"):
        device._pending_programs = []  # type: ignore[attr-defined]
    device._pending_programs.append(handle)  # type: ignore[attr-defined]
    return handle


def Finish(device: GrayskullDevice,
           max_events: Optional[int] = None) -> float:
    """Run the device until all enqueued programs complete.

    Returns the wall time since the earliest unfinished program started.
    """
    pending: List[ProgramHandle] = getattr(device, "_pending_programs", [])
    if not pending:
        return 0.0
    t0 = min(h.t_start for h in pending)
    for handle in pending:
        for proc in handle.processes:
            device.sim.run(until=proc, max_events=max_events)
        handle.t_end = device.sim.now
    device._pending_programs = []  # type: ignore[attr-defined]
    device.energy.set_active_cores(0)
    return device.sim.now - t0
