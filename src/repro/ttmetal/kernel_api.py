"""Device-side kernel API: what a baby-core kernel can call.

Kernels are Python generator functions taking a single context argument::

    def reader_kernel(ctx):
        src = ctx.arg("src_noc_addr")
        yield from ctx.cb_reserve_back(CB_IN0, 1)
        yield from ctx.noc_async_read(src, ctx.cb_write_ptr(CB_IN0), 2048)
        yield from ctx.noc_async_read_barrier()
        yield from ctx.cb_push_back(CB_IN0, 1)

Every API call is a generator (``yield from`` it) so that the simulator
can charge the calibrated cost and block where the real call blocks.  The
surface mirrors tt-metal's dataflow and compute APIs, plus the
``cb_set_rd_ptr`` extension the paper added (Section VI).

Contiguity is detected automatically: a DRAM request that starts exactly
where the previous request (same data mover, same direction) ended is
contiguous; anything else pays the non-contiguous penalty from Table IV.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence

import numpy as np

from repro.arch.noc import ReadJob, WriteJob
from repro.arch.tensix import COMPUTE, DATA_MOVER_0, DATA_MOVER_1, TensixCore
from repro.sim import Event, Timeout
from repro.ttmetal.buffers import Buffer

__all__ = ["NocAddr", "DataMoverCtx", "ComputeCtx", "KernelError"]

_REQUIRED = object()


class KernelError(RuntimeError):
    """Kernel-level misuse of the device API."""


class NocAddr(NamedTuple):
    """A resolved NoC address: DRAM bank + byte offset within the bank."""

    bank_id: int
    addr: int

    def __add__(self, nbytes):  # type: ignore[override]
        """Pointer arithmetic, as kernels do with ``ddr_addr + offset``."""
        return NocAddr(self.bank_id, self.addr + int(nbytes))


def _rotating_gather(window: np.ndarray, pos: int, size: int) -> np.ndarray:
    """Read ``size`` stream bytes from a rotating window starting at ``pos``.

    The exact inverse of the placement rule (stream byte ``j`` lives at
    window position ``(pos + j) % win``), for any number of wraps — the
    two-slice concatenation this replaces silently truncated ranges
    longer than ``pos``'s remaining lap.
    """
    win = window.size
    if pos + size <= win:
        return window[pos:pos + size].copy()
    return window[(pos + np.arange(size)) % win]


class _CtxBase:
    """Shared state/behaviour of all three kernel contexts."""

    slot: str = ""

    def __init__(self, core: TensixCore, args: Optional[Dict] = None):
        self.core = core
        self.sim = core.sim
        self.costs = core.costs
        self.args = dict(args or {})
        # Memoised per-kernel setup: the device tracer is resolved once at
        # context construction instead of per API call (EnqueueProgram
        # builds contexts after the host attaches any tracer, so the
        # snapshot is always current when the kernel runs).
        self._tracer = getattr(self.args.get("_device"), "tracer", None)
        # Pending charges of an open fused region (None = not fused).
        self._fused: Optional[List[float]] = None

    # -- misc ---------------------------------------------------------------
    def arg(self, name: str, default=_REQUIRED):
        """Fetch a runtime argument (host ``SetRuntimeArgs``)."""
        if name in self.args:
            return self.args[name]
        if default is _REQUIRED:
            raise KernelError(
                f"kernel on core {self.core.coord} missing runtime arg "
                f"{name!r} (have {sorted(self.args)})")
        return default

    @property
    def my_x(self) -> int:
        return self.core.x

    @property
    def my_y(self) -> int:
        return self.core.y

    def _hang_check(self):
        """Strand the kernel if a hang was injected on this slot (generator).

        Checked at every API boundary, so a hang injected mid-transfer
        takes effect at the kernel's next call — like a baby core whose
        instruction stream wedged.
        """
        gate = self.core.hang_gate(self.slot)
        if gate is not None:
            yield gate  # never fires; only Process.interrupt can free us

    def _elapse(self, seconds: float):
        """Charge busy time to this baby core (generator)."""
        core = self.core
        if core.hung_slots:
            if self._fused is not None:
                yield from self._fused_flush()
            yield from self._hang_check()
        if self._fused is not None:
            if seconds > 0:
                self._fused.append(seconds)
            return
        if seconds > 0:
            core.busy_time[self.slot] += seconds
            sim = self.sim
            if self._tracer is None:
                yield Timeout(sim, seconds)
            else:
                t0 = sim.now
                yield Timeout(sim, seconds)
                self._tracer.record(core.coord, self.slot, "busy",
                                    t0, sim.now)

    # -- fused charge regions ---------------------------------------------
    # A fused region coalesces the timeouts of consecutive API ops into a
    # single simulator event, for op runs that are *core-private*: they may
    # touch the FPU, read committed CB pages, handshake CBs produced and
    # consumed by this same kernel (a self-loop like the optimised
    # Jacobi's INTERMED buffer), and *test* shared CBs/semaphores via the
    # blocking waits (read-only until they succeed), but must not
    # push/pop CBs or increment semaphores shared with another kernel —
    # those state changes decide when peers wake.  The wake-up instant
    # and busy accounting accumulate with the same sequential float
    # additions the unfused ops would have performed, so fusion is
    # timestamp-exact; an op that would genuinely block flushes the
    # pending charges first (and re-tests at the flushed timestamp),
    # blocks exactly when the unfused op would, and then re-opens the
    # region from the resume instant.
    def fused_begin(self) -> None:
        """Open a fused charge region (plain call, no yield)."""
        if self._fused is not None:
            raise KernelError("fused_begin() inside an open fused region")
        self._fused = []

    def fused_end(self):
        """Close the region, charging all pending ops as one event
        (generator).  Tolerates a region already flushed by a blocking
        op."""
        if self._fused is not None:
            yield from self._fused_flush()

    def _fused_flush(self):
        charges = self._fused
        self._fused = None
        if charges:
            core = self.core
            busy = core.busy_time
            slot = self.slot
            sim = self.sim
            target = t0 = sim.now
            for c in charges:
                busy[slot] += c
                target += c
            yield sim.timeout_at(target)
            if self._tracer is not None:
                self._tracer.record(core.coord, slot, "busy", t0, sim.now)

    def _elapse_steps(self, seconds: float, steps: int):
        """Charge ``steps`` back-to-back ops of ``seconds`` each (generator).

        One simulator event covers the whole run, but the wake-up time and
        busy accounting are accumulated with the same sequential float
        additions as ``steps`` separate :meth:`_elapse` calls, so fused
        API batches stay bit-identical in time to their unfused form.
        """
        core = self.core
        if core.hung_slots:
            if self._fused is not None:
                yield from self._fused_flush()
            yield from self._hang_check()
        if seconds <= 0 or steps <= 0:
            return
        if self._fused is not None:
            self._fused.extend([seconds] * steps)
            return
        busy = core.busy_time
        slot = self.slot
        sim = self.sim
        target = t0 = sim.now
        for _ in range(steps):
            busy[slot] += seconds
            target += seconds
        yield sim.timeout_at(target)
        if self._tracer is not None:
            self._tracer.record(core.coord, slot, "busy", t0, sim.now)

    def _block(self, event):
        """Wait on an event, accounting the time as a stall (generator)."""
        if self._fused is not None:
            # Defensive: a blocking wait inside a fused region pays the
            # pending charges before it starts stalling.
            yield from self._fused_flush()
        core = self.core
        if core.hung_slots:
            yield from self._hang_check()
        sim = self.sim
        t0 = sim.now
        result = yield event
        core.stall_time[self.slot] += sim.now - t0
        if self._tracer is not None:
            self._tracer.record(core.coord, self.slot, "stall",
                                t0, sim.now)
        return result

    def dprint(self, message: str):
        """tt-metal DPRINT: visible (and costly) only with the print
        server attached — the paper found it "incurred significant
        overhead and-so ... it was disabled for all production runs"."""
        device = self.args.get("_device")
        if device is None or not device.print_server_enabled:
            # Production mode: the statement compiles out entirely, so it
            # must cost exactly zero simulated time.
            return
            yield  # pragma: no cover - unreachable; keeps this a generator
        yield from self._elapse(self.costs.dprint_cost)
        device.dprint_log.append(
            (self.sim.now, self.core.coord, self.slot, str(message)))

    def _cb(self, cb_id: int):
        try:
            return self.core.cbs[cb_id]
        except KeyError:
            raise KernelError(
                f"core {self.core.coord} has no CB {cb_id} "
                f"(configured: {sorted(self.core.cbs)})") from None

    # -- circular buffers ------------------------------------------------------
    # The blocking ops consult the CB's synchronous fast path first: a
    # handshake that would complete immediately (pages already free /
    # committed, no queued peers, no wedge) commits without building an
    # event or suspending the process — the preceding ``_elapse`` timeout
    # already anchored the simulated time, so the wake-up instant is
    # unchanged.  Only genuinely blocking handshakes take the event path.
    def cb_reserve_back(self, cb_id: int, n: int = 1):
        """Block until ``n`` pages are free in the CB, then reserve them."""
        yield from self._elapse(self.costs.cb_op)
        cb = self._cb(cb_id)
        if not cb.try_reserve(n):
            if self._fused is not None:
                # Re-test at the flushed (true) timestamp: pages freed
                # while the region's charges were pending count.  The
                # region re-opens afterwards — it conceptually extends to
                # fused_end(), and charges after a block accumulate from
                # the resume instant exactly as unfused ops would.
                yield from self._fused_flush()
                if not cb.try_reserve(n):
                    yield from self._block(cb.reserve_back(n))
                self._fused = []
                return
            yield from self._block(cb.reserve_back(n))

    def cb_push_back(self, cb_id: int, n: int = 1):
        """Commit ``n`` reserved pages to the consumer side."""
        yield from self._elapse(self.costs.cb_op)
        self._cb(cb_id).push_back(n)

    def cb_wait_front(self, cb_id: int, n: int = 1):
        """Block until ``n`` pages are committed in the CB."""
        yield from self._elapse(self.costs.cb_op)
        cb = self._cb(cb_id)
        if not cb.try_wait(n):
            if self._fused is not None:
                yield from self._fused_flush()
                if not cb.try_wait(n):
                    yield from self._block(cb.wait_front(n))
                self._fused = []
                return
            yield from self._block(cb.wait_front(n))

    def cb_pop_front(self, cb_id: int, n: int = 1):
        """Recycle ``n`` consumed pages."""
        yield from self._elapse(self.costs.cb_op)
        self._cb(cb_id).pop_front(n)

    def cb_write_ptr(self, cb_id: int) -> int:
        """L1 address of the reserved back page (``get_write_ptr``)."""
        return self._cb(cb_id).get_write_ptr()

    def cb_read_ptr(self, cb_id: int) -> int:
        """L1 address the consumer reads from (``get_read_ptr``)."""
        return self._cb(cb_id).get_read_ptr()

    # -- raw L1 access ------------------------------------------------------
    def l1_store_u16(self, addr: int, values: np.ndarray):
        """Store 16-bit words into L1 from the baby core (software fill).

        Used e.g. to fill the 0.25-constant scalar CB at program start.
        Charged as one memcpy call.
        """
        vals = np.asarray(values, dtype=np.uint16).ravel()
        yield from self._elapse(self.costs.memcpy_time(vals.size * 2, calls=1))
        self.core.sram.view_u16(addr, vals.size)[:] = vals

    def l1_store_u32(self, addr: int, values: np.ndarray):
        """Store 32-bit words into L1 (FP32 constant fills)."""
        vals = np.asarray(values, dtype=np.uint32).ravel()
        yield from self._elapse(self.costs.memcpy_time(vals.size * 4, calls=1))
        self.core.sram.view_u32(addr, vals.size)[:] = vals

    def l1_view_u16(self, addr: int, count: int) -> np.ndarray:
        """A read/write 16-bit view of L1 (no time charged; RISC-V loads)."""
        return self.core.sram.view_u16(addr, count)

    # -- semaphores ------------------------------------------------------------
    def _resolve_sem(self, sem):
        """Accept a core-local semaphore id or a shared Semaphore object.

        Shared objects model NoC-visible semaphores used for cross-core
        coordination (the multi-core iteration barrier).
        """
        if isinstance(sem, int):
            try:
                return self.core.semaphores[sem]
            except KeyError:
                raise KernelError(
                    f"core {self.core.coord} has no semaphore {sem}") from None
        return sem

    def semaphore_set(self, sem, value: int):
        yield from self._elapse(self.costs.semaphore_op)
        self._resolve_sem(sem).set_value(value)

    def semaphore_inc(self, sem, n: int = 1):
        yield from self._elapse(self.costs.semaphore_op)
        self._resolve_sem(sem).release(n)

    def semaphore_wait(self, sem, value: int):
        """Block until the semaphore reaches ``value`` (non-consuming)."""
        yield from self._elapse(self.costs.semaphore_op)
        sem = self._resolve_sem(sem)
        if not sem.try_wait_at_least(value):
            if self._fused is not None:
                yield from self._fused_flush()
                if not sem.try_wait_at_least(value):
                    yield from self._block(sem.wait_at_least(value))
                self._fused = []
                return
            yield from self._block(sem.wait_at_least(value))


class DataMoverCtx(_CtxBase):
    """Context for the two data-mover baby cores (NoC reads/writes, memcpy)."""

    def __init__(self, core: TensixCore, slot: str,
                 args: Optional[Dict] = None):
        if slot not in (DATA_MOVER_0, DATA_MOVER_1):
            raise KernelError(f"invalid data-mover slot {slot!r}")
        super().__init__(core, args)
        self.slot = slot
        self.noc = core.noc0 if slot == DATA_MOVER_0 else core.noc1
        self.link = core.links[slot]
        self._outstanding_reads: List[Event] = []
        self._outstanding_writes: List[Event] = []
        # (bank, end-address) of the previous request, per direction, for
        # automatic contiguity detection.
        self._last_read_end: Optional[tuple[int, int]] = None
        self._last_write_end: Optional[tuple[int, int]] = None

    # -- addressing ----------------------------------------------------------
    def get_noc_addr(self, noc_x: int, noc_y: int, addr: int) -> NocAddr:
        """Resolve grid coordinates + offset to a DRAM NoC address."""
        device = self.arg("_device")
        bank = device.bank_from_noc_coords(noc_x, noc_y)
        return NocAddr(bank, addr)

    # -- contiguity bookkeeping -------------------------------------------------
    def _read_penalty(self, bank: int, addr: int, size: int) -> float:
        contiguous = self._last_read_end == (bank, addr)
        self._last_read_end = (bank, addr + size)
        return 0.0 if contiguous else self.costs.noncontig_read

    def _write_penalty(self, bank: int, addr: int, size: int) -> float:
        contiguous = self._last_write_end == (bank, addr)
        self._last_write_end = (bank, addr + size)
        return 0.0 if contiguous else self.costs.noncontig_write

    # -- raw async reads/writes (single-bank addressing, Listings 3/4) --------
    def noc_async_read(self, noc_addr: NocAddr, l1_addr: int, size: int):
        """Non-blocking DRAM→L1 read of ``size`` bytes.

        Functional data lands immediately (unaligned addresses return
        shifted bytes, per :mod:`repro.arch.dram`); the completion joins
        the outstanding set drained by :meth:`noc_async_read_barrier`.
        """
        pen = self._read_penalty(noc_addr.bank_id, noc_addr.addr, size)
        yield from self._elapse(self.costs.read_issue + pen)
        data, ev = self.noc.read(self.link,
                                 ReadJob(noc_addr.bank_id, noc_addr.addr, size))
        self.core.sram.view(l1_addr, size)[:] = data
        self._outstanding_reads.append(ev)

    def noc_async_read_barrier(self):
        """Block until every outstanding read has completed.

        Single-event waits (the common case: one read per barrier in the
        row-streaming kernels) skip the :class:`AllOf` machinery and block
        on the completion directly; an empty outstanding set returns
        without suspending at all.
        """
        pending = self._outstanding_reads
        if not pending:
            if self.core.hung_slots:
                yield from self._hang_check()
            return
        self._outstanding_reads = []
        ev = pending[0] if len(pending) == 1 else self.sim.all_of(pending)
        yield from self._block(ev)

    def noc_async_write(self, l1_addr: int, noc_addr: NocAddr, size: int):
        """Non-blocking L1→DRAM write (alignment rules apply at the bank)."""
        pen = self._write_penalty(noc_addr.bank_id, noc_addr.addr, size)
        yield from self._elapse(self.costs.write_issue + pen)
        data = self.core.sram.view(l1_addr, size).copy()
        ev = self.noc.write(self.link,
                            WriteJob(noc_addr.bank_id, noc_addr.addr, data))
        self._outstanding_writes.append(ev)

    def noc_async_write_barrier(self):
        """Block until every outstanding write has completed (same
        single-event / empty-set fast paths as the read barrier)."""
        pending = self._outstanding_writes
        if not pending:
            if self.core.hung_slots:
                yield from self._hang_check()
            return
        self._outstanding_writes = []
        ev = pending[0] if len(pending) == 1 else self.sim.all_of(pending)
        yield from self._block(ev)

    # -- buffer-level access (handles interleaving transparently) ---------------
    def noc_read_buffer(self, buf: Buffer, offset: int, l1_addr: int,
                        size: int, *, replay: bool = False):
        """Read a logical range of a :class:`Buffer` into L1.

        Splits across interleaved pages, charging the per-page address
        generation overhead (Table VI); marks ``replay`` for re-reads of
        recently fetched rows (Table V).
        """
        jobs = buf.read_jobs(offset, size)
        pen = self._read_penalty(jobs[0].bank_id, jobs[0].addr,
                                 jobs[0].size) if jobs else 0.0
        issue = self.costs.read_issue + pen
        if len(jobs) > 1:
            issue += (len(jobs) - 1) * self.costs.page_overhead_read
        yield from self._elapse(issue)
        out: List[np.ndarray] = []
        ev = self.noc.read_burst(self.link, jobs, out, replay=replay,
                                 interleaved=buf.interleaved)
        view = self.core.sram.view(l1_addr, size)
        pos = 0
        for chunk in out:
            view[pos:pos + chunk.size] = chunk
            pos += chunk.size
        self._outstanding_reads.append(ev)

    def noc_write_buffer(self, buf: Buffer, offset: int, l1_addr: int,
                         size: int):
        """Write L1 bytes to a logical range of a :class:`Buffer`."""
        data = self.core.sram.view(l1_addr, size).copy()
        jobs = buf.write_jobs(offset, data)
        pen = self._write_penalty(jobs[0].bank_id, jobs[0].addr,
                                  len(jobs[0].data)) if jobs else 0.0
        issue = self.costs.write_issue + pen
        if len(jobs) > 1:
            issue += (len(jobs) - 1) * self.costs.page_overhead_write
        yield from self._elapse(issue)
        ev = self.noc.write_burst(self.link, jobs, interleaved=buf.interleaved)
        self._outstanding_writes.append(ev)

    # -- burst helpers (streaming sweeps: millions of requests, O(1) events) ----
    def noc_read_buffer_burst(self, buf: Buffer, ranges: Sequence[tuple[int, int]],
                              l1_addr: int, *, sync: bool = False,
                              replay: bool = False,
                              window: Optional[int] = None):
        """Issue many logical reads as one lumped event.

        ``ranges`` is a sequence of ``(offset, size)``.  With ``sync`` each
        request is followed by a barrier (the per-request discipline of
        Tables III/IV); otherwise one barrier covers the burst.  Payloads
        land back-to-back at ``l1_addr``; ``window`` makes the destination
        a rotating scratch of that many bytes (how the streaming kernels
        reuse one CB page at full problem scale).
        """
        jobs: List[ReadJob] = []
        issue = 0.0
        for off, size in ranges:
            for j in buf.read_jobs(off, size):
                issue += self.costs.read_issue + self._read_penalty(
                    j.bank_id, j.addr, j.size)
                jobs.append(j)
        extra_pages = len(jobs) - len(ranges)
        if extra_pages > 0:
            issue += extra_pages * self.costs.page_overhead_read
        if sync:
            issue += len(jobs) * self.costs.read_latency
        yield from self._elapse(issue)
        out: List[np.ndarray] = []
        ev = self.noc.read_burst(self.link, jobs, out, replay=replay,
                                 interleaved=buf.interleaved)
        total = sum(s for _, s in ranges)
        win = window if window is not None else total
        view = self.core.sram.view(l1_addr, win)
        pos = 0
        for chunk in out:
            taken = 0
            while taken < chunk.size:
                room = min(win - pos, chunk.size - taken)
                view[pos:pos + room] = chunk[taken:taken + room]
                taken += room
                pos = (pos + room) % win
        self._outstanding_reads.append(ev)

    def noc_write_buffer_burst(self, buf: Buffer,
                               ranges: Sequence[tuple[int, int]],
                               l1_addr: int, *, sync: bool = False,
                               window: Optional[int] = None):
        """Mirror of :meth:`noc_read_buffer_burst` for writes."""
        total = sum(s for _, s in ranges)
        win = window if window is not None else total
        src = self.core.sram.view(l1_addr, win)
        jobs: List[WriteJob] = []
        issue = 0.0
        pos = 0
        n_segments = 0
        for off, size in ranges:
            data = _rotating_gather(src, pos, size)
            pos = (pos + size) % win
            for j in buf.write_jobs(off, data):
                issue += self.costs.write_issue + self._write_penalty(
                    j.bank_id, j.addr, len(j.data))
                jobs.append(j)
            n_segments += 1
        extra_pages = len(jobs) - n_segments
        if extra_pages > 0:
            issue += extra_pages * self.costs.page_overhead_write
        if sync:
            issue += len(jobs) * self.costs.write_latency
        yield from self._elapse(issue)
        ev = self.noc.write_burst(self.link, jobs, interleaved=buf.interleaved)
        self._outstanding_writes.append(ev)

    # -- uniform burst fast path (vectorised; single-bank buffers only) ---------
    def _place_window(self, l1_addr: int, window: Optional[int],
                      data: np.ndarray) -> None:
        """Land burst payload in a (possibly rotating) L1 window."""
        total = data.size
        win = window if window is not None else total
        view = self.core.sram.view(l1_addr, win)
        if total <= win:
            view[:total] = data
            return
        # Rotating scratch: only the final wrap survives; compute the end
        # state of the cyclic placement.
        pos_end = total % win
        tail = data[-win:]
        view[pos_end:] = tail[:win - pos_end]
        view[:pos_end] = tail[win - pos_end:]

    def noc_read_buffer_burst_uniform(self, buf: Buffer, start: int,
                                      n_requests: int, batch: int,
                                      stride: int, l1_addr: int, *,
                                      sync: bool = False,
                                      replay: bool = False,
                                      window: Optional[int] = None):
        """``n_requests`` reads of ``batch`` bytes spaced ``stride`` apart.

        O(1) in Python regardless of ``n_requests`` — the sweep path for
        Tables III–V where request counts reach 16.8 M.  Timing matches
        the per-request path (issue + contiguity penalties per request,
        one shared completion); per-request alignment corruption is not
        emulated here (see :meth:`Buffer.gather_uniform`).
        """
        contiguous = stride == batch
        pen_count = 1 if contiguous else n_requests
        issue = (n_requests * self.costs.read_issue
                 + pen_count * self.costs.noncontig_read)
        if sync:
            issue += n_requests * self.costs.read_latency
        yield from self._elapse(issue)
        data = buf.gather_uniform(start, n_requests, batch, stride)
        self._place_window(l1_addr, window, data)
        self._last_read_end = (buf.bank_id,
                               buf.addr + start + (n_requests - 1) * stride
                               + batch)
        ev = self.noc.book_read(self.link, buf.bank_id, data.size,
                                n_requests, replay=replay)
        self._outstanding_reads.append(ev)

    def noc_write_buffer_burst_uniform(self, buf: Buffer, start: int,
                                       n_requests: int, batch: int,
                                       stride: int, l1_addr: int, *,
                                       sync: bool = False,
                                       window: Optional[int] = None):
        """Mirror of the uniform read burst for writes."""
        contiguous = stride == batch
        pen_count = 1 if contiguous else n_requests
        issue = (n_requests * self.costs.write_issue
                 + pen_count * self.costs.noncontig_write)
        if sync:
            issue += n_requests * self.costs.write_latency
        yield from self._elapse(issue)
        total = n_requests * batch
        win = window if window is not None else total
        src = self.core.sram.view(l1_addr, win)
        payload = src if total == win else _rotating_gather(src, 0, total)
        buf.scatter_uniform(start, n_requests, batch, stride, payload)
        self._last_write_end = (buf.bank_id,
                                buf.addr + start + (n_requests - 1) * stride
                                + batch)
        ev = self.noc.book_write(self.link, buf.bank_id, total, n_requests)
        self._outstanding_writes.append(ev)

    # -- core-to-core SRAM transfers (future-work extension) ---------------------
    def noc_sram_write(self, dst_core, dst_l1: int, src_l1: int, size: int):
        """Push local L1 bytes into another core's L1 over this NoC.

        Grayskull silicon supports core↔core NoC transfers even though the
        paper's kernels never use them; the SRAM-resident solver
        (:mod:`repro.core.jacobi_sram`) exchanges halo rows this way.
        """
        yield from self._elapse(self.costs.write_issue)
        src = self.core.sram.view(src_l1, size).copy()
        ev = self.noc.sram_copy(self.link, src,
                                dst_core.sram.view(dst_l1, size))
        self._outstanding_writes.append(ev)

    def noc_sram_write_multicast(self, dst_cores, dst_l1: int, src_l1: int,
                                 size: int):
        """Replicate local L1 bytes into the same L1 window of many cores.

        Models tt-metal's ``noc_async_write_multicast`` (the grid-wide
        scalar/config broadcast pattern): one issue charge, one NoC copy
        per destination, every completion draining through
        :meth:`noc_async_write_barrier`.
        """
        dsts = list(dst_cores)
        if not dsts:
            raise KernelError(
                "noc_sram_write_multicast needs at least one destination")
        yield from self._elapse(self.costs.write_issue)
        src = self.core.sram.view(src_l1, size).copy()
        for dst in dsts:
            ev = self.noc.sram_copy(self.link, src,
                                    dst.sram.view(dst_l1, size))
            self._outstanding_writes.append(ev)

    # -- software memcpy on the data-mover core ---------------------------------
    @staticmethod
    def _copy_misaligned(*addrs: int) -> bool:
        """Non-word-aligned pointers halve the baby core's copy rate."""
        return any(a % 4 for a in addrs)

    def memcpy(self, dst_l1: int, src_l1: int, size: int):
        """One contiguous L1→L1 copy (expensive: ~633 MB/s + 450 ns/call)."""
        yield from self._elapse(self.costs.memcpy_time(
            size, calls=1, misaligned=self._copy_misaligned(dst_l1, src_l1)))
        sram = self.core.sram
        sram.view(dst_l1, size)[:] = sram.view(src_l1, size).copy()

    def memcpy_rows(self, dst_l1: int, dst_stride: int, src_l1: int,
                    src_stride: int, row_bytes: int, rows: int):
        """Strided row-by-row copy — the 4-CB extraction of Section IV.

        Each row is a separate copy call (the per-call overhead is what
        makes this the paper's dominant bottleneck, Table II).
        """
        if rows <= 0 or row_bytes <= 0:
            raise KernelError("rows and row_bytes must be positive")
        misaligned = self._copy_misaligned(dst_l1, src_l1,
                                           dst_stride, src_stride)
        yield from self._elapse(
            self.costs.memcpy_time(rows * row_bytes, calls=rows,
                                   misaligned=misaligned))
        sram = self.core.sram
        for r in range(rows):
            sram.view(dst_l1 + r * dst_stride, row_bytes)[:] = \
                sram.view(src_l1 + r * src_stride, row_bytes).copy()


class ComputeCtx(_CtxBase):
    """Context for the logical compute core (unpack/math/pack + FPU)."""

    slot = COMPUTE

    def __init__(self, core: TensixCore, args: Optional[Dict] = None):
        super().__init__(core, args)
        self.fpu = core.fpu

    # -- register file ---------------------------------------------------------
    def tile_regs_acquire(self):
        yield from self._elapse(self.costs.cb_op)
        self.fpu.acquire_dst()

    def tile_regs_release(self):
        yield from self._elapse(self.costs.cb_op)
        self.fpu.release_dst()

    # -- tile math (each charges one calibrated FPU op) --------------------------
    def add_tiles(self, cb_a: int, cb_b: int, ia: int, ib: int, dst: int):
        yield from self._elapse(self.costs.fpu_op)
        self.fpu.add_tiles(self._cb(cb_a), self._cb(cb_b), ia, ib, dst)

    def sub_tiles(self, cb_a: int, cb_b: int, ia: int, ib: int, dst: int):
        yield from self._elapse(self.costs.fpu_op)
        self.fpu.sub_tiles(self._cb(cb_a), self._cb(cb_b), ia, ib, dst)

    def mul_tiles(self, cb_a: int, cb_b: int, ia: int, ib: int, dst: int):
        yield from self._elapse(self.costs.fpu_op)
        self.fpu.mul_tiles(self._cb(cb_a), self._cb(cb_b), ia, ib, dst)

    def copy_tile(self, cb: int, idx: int, dst: int):
        yield from self._elapse(self.costs.fpu_op)
        self.fpu.copy_tile(self._cb(cb), idx, dst)

    def add_tile_to_dst(self, cb: int, idx: int, dst: int):
        """Destination-accumulation mode (the paper's rejected variant)."""
        yield from self._elapse(self.costs.fpu_op)
        self.fpu.add_tiles_to_dst(self._cb(cb), idx, dst)

    def unary_tile(self, op: str, cb: int, idx: int, dst: int):
        """SFPU elementwise op: exp/log/sqrt/square/abs/sin/cos/
        reciprocal/relu/sigmoid (the FPU capabilities the paper lists)."""
        yield from self._elapse(self.costs.fpu_op)
        self.fpu.unary_tile(op, self._cb(cb), idx, dst)

    def reduce_tile(self, cb: int, idx: int, dst: int, kind: str = "sum"):
        """Scalar tile reduction (sum / max / absmax); value in dst[0]."""
        yield from self._elapse(self.costs.fpu_op)
        return self.fpu.reduce_tile(self._cb(cb), idx, dst, kind=kind)

    def matmul_tiles(self, cb_a: int, cb_b: int, ia: int, ib: int,
                     dst: int, accumulate: bool = False):
        """32x32 tile matrix multiply — the FPU's ML primitive."""
        yield from self._elapse(self.costs.fpu_op)
        self.fpu.matmul_tiles(self._cb(cb_a), self._cb(cb_b), ia, ib, dst,
                              accumulate=accumulate)

    def transpose_tile(self, cb: int, idx: int, dst: int):
        """32x32 tile transpose."""
        yield from self._elapse(self.costs.fpu_op)
        self.fpu.transpose_tile(self._cb(cb), idx, dst)

    def pack_tile(self, dst: int, cb_out: int, page_offset: int = 0):
        yield from self._elapse(self.costs.fpu_op)
        self.fpu.pack_tile(dst, self._cb(cb_out), page_offset)

    def cb_set_wr_ptr(self, cb_id: int, l1_addr: int):
        """Producer-side alias (the Section-VIII API recommendation).

        Points the packer at an arbitrary L1 address so ``pack_tile``
        writes straight into e.g. an SRAM-resident domain slab.
        """
        yield from self._elapse(self.costs.cb_op)
        self._cb(cb_id).set_wr_ptr(l1_addr)

    # -- the paper's extension ----------------------------------------------------
    def cb_set_rd_ptr(self, cb_id: int, l1_addr: int):
        """``cb_set_rd_ptr`` → ``llk_set_read_ptr`` (Section VI).

        Points the unpacker at an arbitrary L1 address so subsequent tile
        reads alias the data mover's local buffer — no memcpy.  Install it
        after ``cb_wait_front`` completes, exactly as the paper describes.
        """
        yield from self._elapse(self.costs.cb_op)
        self._cb(cb_id).set_rd_ptr(l1_addr)

    def cb_set_rd_ptrs(self, *assignments: tuple[int, int]):
        """Batched ``cb_set_rd_ptr``: ``(cb_id, l1_addr)`` pairs.

        The pointer pokes are consumer-private state (nothing else can
        observe them between the individual ops), so the per-op charges
        fuse into one simulator event via ``_elapse_steps`` — same final
        timestamp and busy accounting, three fewer events per fused
        4-pointer row in the optimised Jacobi kernel.
        """
        yield from self._elapse_steps(self.costs.cb_op, len(assignments))
        for cb_id, l1_addr in assignments:
            self._cb(cb_id).set_rd_ptr(l1_addr)
