"""Circular buffer tests: FIFO protocol, blocking, rd-ptr aliasing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.cb import CBError, CircularBuffer
from repro.arch.sram import Sram
from repro.sim import Simulator


@pytest.fixture
def cb(sim):
    sram = Sram(1 << 18)
    return CircularBuffer(sim, sram, 0, page_size=64, n_pages=4)


def run_proc(sim, gen):
    return sim.run(until=sim.process(gen))


class TestProtocol:
    def test_initial_state(self, cb):
        assert cb.pages_free == 4
        assert cb.pages_committed == 0

    def test_reserve_push_wait_pop(self, sim, cb):
        def proc():
            yield cb.reserve_back(1)
            cb.push_back(1)
            yield cb.wait_front(1)
            cb.pop_front(1)
            return (cb.pages_free, cb.pages_committed)
        assert run_proc(sim, proc()) == (4, 0)

    def test_push_without_reserve_rejected(self, cb):
        with pytest.raises(CBError, match="without matching reserve"):
            cb.push_back(1)

    def test_pop_without_commit_rejected(self, cb):
        with pytest.raises(CBError, match="exceeds committed"):
            cb.pop_front(1)

    def test_reserve_more_than_capacity_rejected(self, sim, cb):
        with pytest.raises(CBError):
            cb.reserve_back(5)

    def test_reserve_blocks_when_full(self, sim, cb):
        t_reserved = []

        def producer():
            for _ in range(5):  # 5 pages through a 4-page CB
                yield cb.reserve_back(1)
                cb.push_back(1)
            t_reserved.append(sim.now)

        def consumer():
            yield sim.timeout(10)
            yield cb.wait_front(1)
            cb.pop_front(1)
        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert t_reserved == [pytest.approx(10.0)]

    def test_wait_blocks_until_push(self, sim, cb):
        def consumer():
            yield cb.wait_front(2)
            return sim.now

        def producer():
            yield cb.reserve_back(2)
            yield sim.timeout(7)
            cb.push_back(2)
        c = sim.process(consumer())
        sim.process(producer())
        assert sim.run(until=c) == pytest.approx(7.0)

    def test_data_flows_through_pages(self, sim, cb):
        def producer():
            for i in range(8):  # wraps the 4-page ring twice
                yield cb.reserve_back(1)
                cb.back_view_u16()[:] = i
                cb.push_back(1)

        def consumer():
            seen = []
            for _ in range(8):
                yield cb.wait_front(1)
                seen.append(int(cb.front_view_u16()[0]))
                cb.pop_front(1)
            return seen
        sim.process(producer())
        c = sim.process(consumer())
        assert sim.run(until=c) == list(range(8))

    def test_write_ptr_requires_reservation(self, cb):
        with pytest.raises(CBError):
            cb.get_write_ptr()

    def test_read_ptr_requires_commit(self, cb):
        with pytest.raises(CBError):
            cb.get_read_ptr()

    def test_pointers_wrap(self, sim, cb):
        ptrs = []

        def proc():
            for _ in range(5):
                yield cb.reserve_back(1)
                ptrs.append(cb.get_write_ptr())
                cb.push_back(1)
                yield cb.wait_front(1)
                cb.pop_front(1)
        run_proc(sim, proc())
        assert ptrs[4] == ptrs[0]  # wrapped after n_pages
        assert len(set(ptrs[:4])) == 4


class TestRdPtrAlias:
    def test_alias_redirects_read(self, sim, cb):
        sram = cb.sram
        scratch = sram.allocate(64, align=32)
        sram.view_u16(scratch, 32)[:] = 0xBEEF

        def proc():
            yield cb.reserve_back(1)
            cb.back_view_u16()[:] = 0x1111
            cb.push_back(1)
            yield cb.wait_front(1)
            cb.set_rd_ptr(scratch)
            vals = cb.front_view_u16().copy()
            cb.pop_front(1)
            return vals
        vals = run_proc(sim, proc())
        assert np.all(vals == 0xBEEF)

    def test_alias_cleared_by_pop(self, sim, cb):
        sram = cb.sram
        scratch = sram.allocate(64, align=32)

        def proc():
            yield cb.reserve_back(2)
            cb.back_view_u16(0)[:] = 1
            cb.back_view_u16(1)[:] = 2
            cb.push_back(2)
            yield cb.wait_front(1)
            cb.set_rd_ptr(scratch)
            cb.pop_front(1)
            # next page must read from the CB's own storage again
            yield cb.wait_front(1)
            val = int(cb.front_view_u16()[0])
            cb.pop_front(1)
            return val
        assert run_proc(sim, proc()) == 2

    def test_alias_bounds_checked(self, cb):
        with pytest.raises(CBError):
            cb.set_rd_ptr(cb.sram.capacity)

    def test_alias_requires_even_address(self, cb):
        with pytest.raises(CBError, match="2-byte"):
            cb.set_rd_ptr(33)

    def test_read_ptr_honours_alias(self, sim, cb):
        scratch = cb.sram.allocate(64, align=32)

        def proc():
            yield cb.reserve_back(1)
            cb.push_back(1)
            yield cb.wait_front(1)
            cb.set_rd_ptr(scratch)
            return cb.get_read_ptr()
        assert run_proc(sim, proc()) == scratch


class TestInvariants:
    def test_committed_plus_free_bounded(self, sim, cb):
        def proc():
            yield cb.reserve_back(3)
            cb.push_back(2)
            assert cb.pages_committed == 2
            assert cb.pages_free == 1
            assert cb.pages_committed + cb.pages_free <= cb.n_pages
        run_proc(sim, proc())

    def test_bad_construction(self, sim):
        sram = Sram(1 << 17)
        with pytest.raises(ValueError):
            CircularBuffer(sim, sram, 0, page_size=0, n_pages=4)
        with pytest.raises(ValueError):
            CircularBuffer(sim, sram, 0, page_size=64, n_pages=0)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(1, 3), min_size=1, max_size=25),
       st.integers(2, 6))
def test_cb_fifo_property(batches, n_pages):
    """Data emerges in exactly the order it was pushed, whatever the
    batch structure, and page accounting never goes out of bounds."""
    sim = Simulator()
    sram = Sram(1 << 18)
    cb = CircularBuffer(sim, sram, 0, page_size=8, n_pages=n_pages)
    batches = [min(b, n_pages) for b in batches]
    total = sum(batches)
    seen = []

    def producer():
        k = 0
        for b in batches:
            yield cb.reserve_back(b)
            for i in range(b):
                cb.back_view_u16(i)[:] = k
                k += 1
            cb.push_back(b)
            assert 0 <= cb.pages_free <= n_pages
            assert 0 <= cb.pages_committed <= n_pages

    def consumer():
        for _ in range(total):
            yield cb.wait_front(1)
            seen.append(int(cb.front_view_u16()[0]))
            cb.pop_front(1)
    sim.process(producer())
    c = sim.process(consumer())
    sim.run(until=c)
    assert seen == list(range(total))
