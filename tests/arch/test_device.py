"""Device, cluster and energy-meter tests."""

import pytest

from repro.arch.cluster import Cluster
from repro.arch.device import GrayskullDevice
from repro.arch.energy import EnergyMeter
from repro.perfmodel.calibration import DEFAULT_COSTS
from repro.sim import Simulator


class TestGeometry:
    def test_grid_and_worker_counts(self, device):
        assert device.grid_width == 12
        assert device.grid_height == 10
        assert device.n_workers == 108

    def test_storage_row_not_workers(self, device):
        storage = [c for c in (device.core(x, 9) for x in range(12))]
        assert all(not c.is_worker for c in storage)
        assert all(device.core(x, y).is_worker
                   for x in range(12) for y in range(9))

    def test_core_lookup_bounds(self, device):
        with pytest.raises(KeyError):
            device.core(12, 0)
        with pytest.raises(KeyError):
            device.core(0, 10)

    def test_worker_grid_placement(self, device):
        grid = device.worker_grid(2, 3)
        assert len(grid) == 2 and len(grid[0]) == 3
        coords = {c.coord for row in grid for c in row}
        assert len(coords) == 6
        assert all(c.is_worker for row in grid for c in row)

    def test_worker_grid_12x9_requires_swap(self, device):
        """The paper's 12x9 placement only fits with Y along the width."""
        grid = device.worker_grid(12, 9)
        assert len(grid) == 12 and len(grid[0]) == 9
        coords = {c.coord for row in grid for c in row}
        assert len(coords) == 108

    def test_worker_grid_too_big(self, device):
        with pytest.raises(ValueError):
            device.worker_grid(12, 10)  # 120 > 108 workers

    def test_dram_bank_coords_roundtrip(self, device):
        for b in range(8):
            x, y = device.dram_bank_noc_coords(b)
            assert device.bank_from_noc_coords(x, y) == b

    def test_bad_bank_coords(self, device):
        with pytest.raises(ValueError):
            device.bank_from_noc_coords(0, 0)  # a core, not a bank
        with pytest.raises(ValueError):
            device.dram_bank_noc_coords(8)

    def test_describe(self, device):
        text = device.describe()
        assert "108 workers" in text and "8 DRAM banks" in text


class TestCluster:
    def test_cards_independent(self):
        cluster = Cluster(2, dram_bank_capacity=1 << 20)
        assert cluster.n_cards == 2
        assert cluster[0].sim is not cluster[1].sim

    def test_wall_time_is_max(self):
        cluster = Cluster(2, dram_bank_capacity=1 << 20)
        cluster[0].sim.run(until=1.0)
        cluster[1].sim.run(until=3.0)
        assert cluster.wall_time_s == pytest.approx(3.0)

    def test_energy_includes_idle_tail(self):
        cluster = Cluster(2, dram_bank_capacity=1 << 20)
        cluster[0].sim.run(until=1.0)
        cluster[1].sim.run(until=3.0)
        e = cluster.energy_j
        # card 0 idles 2 s at idle power on top of both cards' own energy
        assert e >= 2.0 * DEFAULT_COSTS.card_power_idle_w

    def test_map(self):
        cluster = Cluster(3, dram_bank_capacity=1 << 20)
        ids = cluster.map(lambda card: card.device_id)
        assert ids == [0, 1, 2]

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            Cluster(0)


class TestEnergyMeter:
    def test_constant_power_integration(self, sim):
        meter = EnergyMeter(sim, DEFAULT_COSTS)
        meter.set_active_cores(1)
        sim.run(until=2.0)
        expected = DEFAULT_COSTS.card_power_w(1) * 2.0
        assert meter.energy_j == pytest.approx(expected)

    def test_power_nearly_flat_in_cores(self):
        """The paper's key observation: 50-55 W regardless of core count."""
        c = DEFAULT_COSTS
        p1, p108 = c.card_power_w(1), c.card_power_w(108)
        assert 50.0 <= p1 <= 55.0
        assert 50.0 <= p108 <= 55.0
        assert p108 >= p1

    def test_idle_power_below_active(self):
        c = DEFAULT_COSTS
        assert c.card_power_w(0) < c.card_power_w(1)

    def test_step_changes(self, sim):
        meter = EnergyMeter(sim, DEFAULT_COSTS)
        meter.set_active_cores(108)
        sim.run(until=1.0)
        meter.set_active_cores(0)
        sim.run(until=2.0)
        c = DEFAULT_COSTS
        expected = c.card_power_w(108) * 1.0 + c.card_power_idle_w * 1.0
        assert meter.energy_j == pytest.approx(expected)

    def test_negative_cores_rejected(self, sim):
        meter = EnergyMeter(sim, DEFAULT_COSTS)
        with pytest.raises(ValueError):
            meter.set_active_cores(-1)


class TestTensixCore:
    def test_cb_registry(self, device):
        core = device.core(0, 0)
        cb = core.create_cb(0, 2048, 4)
        assert core.cbs[0] is cb
        with pytest.raises(ValueError):
            core.create_cb(0, 2048, 4)

    def test_semaphore_registry(self, device):
        core = device.core(1, 1)
        core.create_semaphore(0, initial=2)
        assert core.semaphores[0].value == 2
        with pytest.raises(ValueError):
            core.create_semaphore(0)

    def test_l1_allocation(self, device):
        core = device.core(2, 2)
        a = core.allocate_l1(128)
        b = core.allocate_l1(128)
        assert b >= a + 128

    def test_describe_lists_cbs(self, device):
        core = device.core(3, 0)
        core.create_cb(5, 1024, 2)
        text = core.describe()
        assert "CB5" in text and "FPU" in text
