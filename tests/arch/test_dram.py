"""DRAM bank tests: storage, alignment corruption rules, allocation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.dram import AccessFault, Dram, DramBank
from repro.perfmodel.calibration import DEFAULT_COSTS
from repro.sim import Simulator


@pytest.fixture
def dram(sim):
    return Dram(sim, DEFAULT_COSTS, bank_capacity=1 << 16)


class TestBasicStorage:
    def test_aligned_write_then_read(self, dram, rng):
        bank = dram.bank(0)
        data = rng.integers(0, 256, 64, dtype=np.uint8)
        bank.write(64, data)
        assert np.array_equal(bank.read(64, 64), data)

    def test_read_returns_copy(self, dram):
        bank = dram.bank(0)
        bank.write(0, np.full(32, 7, dtype=np.uint8))
        snap = bank.read(0, 32)
        bank.write(0, np.full(32, 9, dtype=np.uint8))
        assert np.all(snap == 7)

    def test_out_of_range_read(self, dram):
        with pytest.raises(AccessFault):
            dram.bank(0).read(1 << 16, 4)

    def test_out_of_range_write(self, dram):
        with pytest.raises(AccessFault):
            dram.bank(0).write((1 << 16) - 2, np.zeros(4, dtype=np.uint8))

    def test_negative_address(self, dram):
        with pytest.raises(AccessFault):
            dram.bank(0).read(-4, 4)

    def test_counters(self, dram):
        bank = dram.bank(0)
        bank.write(0, np.zeros(32, dtype=np.uint8))
        bank.read(0, 32)
        assert bank.reads == 1 and bank.writes == 1


class TestAlignmentRules:
    """Section IV-B: the behaviour the paper reverse-engineered."""

    def test_unaligned_read_returns_shifted_data(self, dram):
        bank = dram.bank(0)
        payload = np.arange(64, dtype=np.uint8)
        bank.write(0, payload)
        got = bank.read(2, 16)  # misaligned by 2
        # DMA fetches from the aligned-down address 0: shifted data.
        assert np.array_equal(got, payload[0:16])
        assert not np.array_equal(got, payload[2:18])
        assert bank.unaligned_reads == 1

    def test_aligned_read_is_correct(self, dram):
        bank = dram.bank(0)
        payload = np.arange(96, dtype=np.uint8)
        bank.write(0, payload)
        assert np.array_equal(bank.read(32, 16), payload[32:48])
        assert bank.unaligned_reads == 0

    def test_listing4_workaround_recovers_data(self, dram):
        """Reading from the aligned-down address and skipping the slack
        (Listing 4) yields the right bytes."""
        bank = dram.bank(0)
        payload = np.arange(128, dtype=np.uint8)
        bank.write(0, payload)
        want_addr, want_size = 34, 20
        offset = want_addr % 32
        got = bank.read(want_addr - offset, want_size + offset)
        assert np.array_equal(got[offset:], payload[want_addr:want_addr + want_size])

    def test_unaligned_noncontiguous_write_corrupts(self, dram):
        bank = dram.bank(0)
        bank.write(0, np.zeros(128, dtype=np.uint8))
        data = np.full(8, 0xAB, dtype=np.uint8)
        bank.write(36, data)  # not contiguous with anything, misaligned
        # landed at the aligned-down address 32 instead of 36
        assert np.all(bank.read(32, 8) == 0xAB)
        assert not np.all(bank.read(32, 40)[4:12] == 0xAB)
        assert bank.corrupted_writes == 1

    def test_unaligned_contiguous_continuation_merges(self, dram):
        """The paper: contiguous unaligned writes 'do work'."""
        bank = dram.bank(0)
        bank.write(64, np.full(10, 1, dtype=np.uint8))   # ends at 74
        bank.write(74, np.full(10, 2, dtype=np.uint8))   # continuation: OK
        assert np.all(bank.read(64, 10) == 1)
        assert np.all(bank.read(64, 20)[10:] == 2)
        assert bank.corrupted_writes == 0

    def test_aligned_writes_never_corrupt(self, dram, rng):
        bank = dram.bank(0)
        for addr in (0, 32, 64, 512):
            bank.write(addr, rng.integers(0, 256, 32, dtype=np.uint8))
        assert bank.corrupted_writes == 0


class TestAllocation:
    def test_round_robin_across_banks(self, dram):
        banks = [dram.allocate(128)[0] for _ in range(10)]
        assert banks[:8] == list(range(8))
        assert banks[8] == 0  # wraps

    def test_explicit_bank(self, dram):
        bank_id, addr = dram.allocate(128, bank_id=3)
        assert bank_id == 3

    def test_addresses_aligned(self, dram):
        for _ in range(5):
            _, addr = dram.allocate(100, bank_id=1)
            assert addr % 32 == 0

    def test_exhaustion(self, dram):
        dram.allocate(1 << 15, bank_id=0)
        dram.allocate(1 << 15, bank_id=0)
        with pytest.raises(AccessFault, match="exhausted"):
            dram.allocate(64, bank_id=0)

    def test_zero_size_rejected(self, dram):
        with pytest.raises(ValueError):
            dram.allocate(0)

    def test_interleaved_pages_cycle_banks(self, dram):
        pages = dram.allocate_interleaved(10 * 1024, 1024)
        assert [b for b, _ in pages] == [p % 8 for p in range(10)]

    def test_interleaved_page_cap(self, dram):
        with pytest.raises(ValueError, match="exceeds"):
            dram.allocate_interleaved(1 << 20, 128 << 10)

    def test_interleaved_rounds_up(self, dram):
        pages = dram.allocate_interleaved(1500, 1024)
        assert len(pages) == 2


@settings(max_examples=60, deadline=None)
@given(addr=st.integers(0, 960), size=st.integers(1, 64),
       seed=st.integers(0, 99))
def test_aligned_write_read_roundtrip_property(addr, size, seed):
    """Any aligned write followed by an aligned read returns the payload."""
    addr = (addr // 32) * 32
    sim = Simulator()
    dram = Dram(sim, DEFAULT_COSTS, bank_capacity=4096)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size, dtype=np.uint8)
    bank = dram.bank(0)
    bank.write(addr, data)
    assert np.array_equal(bank.read(addr, size), data)
