"""FPU tests: tile math against the BF16 reference, register protocol."""

import numpy as np
import pytest

from repro.arch.cb import CircularBuffer
from repro.arch.fpu import Fpu, FpuError, N_DST_REGISTERS
from repro.arch.sram import Sram
from repro.dtypes.bf16 import bf16_add, bf16_mul, bits_to_f32, f32_to_bits
from repro.sim import Simulator


@pytest.fixture
def rig(sim):
    """Two input CBs, one output CB, each with a committed/reserved page."""
    sram = Sram(1 << 19)
    cbs = {i: CircularBuffer(sim, sram, i, page_size=2048, n_pages=2)
           for i in range(3)}

    def fill(cb_id, values):
        cb = cbs[cb_id]
        cb.reserve_back(1)
        sim.run()
        cb.back_view_u16()[:] = f32_to_bits(
            np.asarray(values, dtype=np.float32)).ravel()
        cb.push_back(1)
    # output CB: reserve a page to pack into
    cbs[2].reserve_back(1)
    sim.run()
    return cbs, fill


class TestTileMath:
    def test_add_tiles_matches_reference(self, rig, rng):
        cbs, fill = rig
        a = rng.normal(size=1024).astype(np.float32)
        b = rng.normal(size=1024).astype(np.float32)
        fill(0, a)
        fill(1, b)
        fpu = Fpu()
        fpu.acquire_dst()
        fpu.add_tiles(cbs[0], cbs[1], 0, 0, 0)
        fpu.pack_tile(0, cbs[2])
        got = cbs[2].back_view_u16().copy()
        want = bf16_add(f32_to_bits(a), f32_to_bits(b)).ravel()
        assert np.array_equal(got, want)

    def test_mul_tiles_matches_reference(self, rig, rng):
        cbs, fill = rig
        a = rng.normal(size=1024).astype(np.float32)
        b = rng.normal(size=1024).astype(np.float32)
        fill(0, a)
        fill(1, b)
        fpu = Fpu()
        fpu.acquire_dst()
        fpu.mul_tiles(cbs[0], cbs[1], 0, 0, 0)
        fpu.pack_tile(0, cbs[2])
        want = bf16_mul(f32_to_bits(a), f32_to_bits(b)).ravel()
        assert np.array_equal(cbs[2].back_view_u16(), want)

    def test_sub_tiles(self, rig):
        cbs, fill = rig
        fill(0, np.full(1024, 5.0))
        fill(1, np.full(1024, 2.0))
        fpu = Fpu()
        fpu.acquire_dst()
        fpu.sub_tiles(cbs[0], cbs[1], 0, 0, 0)
        assert np.all(fpu.dst_value_f32(0) == 3.0)

    def test_copy_tile(self, rig):
        cbs, fill = rig
        fill(0, np.arange(1024))
        fpu = Fpu()
        fpu.acquire_dst()
        fpu.copy_tile(cbs[0], 0, 3)
        assert np.array_equal(fpu.dst_value_f32(3),
                              bits_to_f32(f32_to_bits(
                                  np.arange(1024, dtype=np.float32))))

    def test_accumulate_into_dst(self, rig):
        cbs, fill = rig
        fill(0, np.full(1024, 1.5))
        fill(1, np.full(1024, 2.0))
        fpu = Fpu()
        fpu.acquire_dst()
        fpu.copy_tile(cbs[0], 0, 0)
        fpu.add_tiles_to_dst(cbs[1], 0, 0)
        assert np.all(fpu.dst_value_f32(0) == 3.5)

    def test_intermediate_precision_is_f32(self, rig):
        """The math runs at f32; only pack rounds to BF16."""
        cbs, fill = rig
        fill(0, np.full(1024, 1.0))
        fill(1, np.full(1024, 2 ** -9))  # half a BF16 ULP of 1.0
        fpu = Fpu()
        fpu.acquire_dst()
        fpu.add_tiles(cbs[0], cbs[1], 0, 0, 0)
        # before packing, the register holds the exact f32 sum
        assert np.all(fpu.dst_value_f32(0) == np.float32(1.0 + 2 ** -9))
        # packing rounds (ties-to-even -> 1.0)
        fpu.pack_tile(0, cbs[2])
        assert np.all(bits_to_f32(cbs[2].back_view_u16()) == 1.0)

    def test_ops_counter(self, rig):
        cbs, fill = rig
        fill(0, np.zeros(1024))
        fill(1, np.zeros(1024))
        fpu = Fpu()
        fpu.acquire_dst()
        fpu.add_tiles(cbs[0], cbs[1], 0, 0, 0)
        fpu.pack_tile(0, cbs[2])
        assert fpu.ops == 1 and fpu.packs == 1


class TestRegisterProtocol:
    def test_op_requires_acquire(self, rig):
        cbs, fill = rig
        fill(0, np.zeros(1024))
        fill(1, np.zeros(1024))
        fpu = Fpu()
        with pytest.raises(FpuError, match="acquired"):
            fpu.add_tiles(cbs[0], cbs[1], 0, 0, 0)

    def test_double_acquire_rejected(self):
        fpu = Fpu()
        fpu.acquire_dst()
        with pytest.raises(FpuError):
            fpu.acquire_dst()

    def test_release_clears_registers(self, rig):
        cbs, fill = rig
        fill(0, np.zeros(1024))
        fpu = Fpu()
        fpu.acquire_dst()
        fpu.copy_tile(cbs[0], 0, 0)
        fpu.release_dst()
        fpu.acquire_dst()
        with pytest.raises(FpuError, match="empty"):
            fpu.dst_value_f32(0)

    def test_register_index_bounds(self, rig):
        fpu = Fpu()
        fpu.acquire_dst()
        with pytest.raises(FpuError):
            fpu.dst_value_f32(N_DST_REGISTERS)

    def test_pack_empty_register_rejected(self, rig):
        cbs, _ = rig
        fpu = Fpu()
        fpu.acquire_dst()
        with pytest.raises(FpuError, match="empty"):
            fpu.pack_tile(0, cbs[2])

    def test_oversized_page_rejected(self, sim):
        sram = Sram(1 << 19)
        big = CircularBuffer(sim, sram, 9, page_size=4096, n_pages=1)
        big.reserve_back(1)
        sim.run()
        big.push_back(1)
        fpu = Fpu()
        fpu.acquire_dst()
        with pytest.raises(FpuError, match="at most"):
            fpu.copy_tile(big, 0, 0)

    def test_partial_tile_pages_allowed(self, sim):
        """Ragged chunks (< 1024 elements) still go through the FPU."""
        sram = Sram(1 << 19)
        small_in = CircularBuffer(sim, sram, 5, page_size=256, n_pages=1)
        small_out = CircularBuffer(sim, sram, 6, page_size=256, n_pages=1)
        small_in.reserve_back(1)
        small_out.reserve_back(1)
        sim.run()
        small_in.back_view_u16()[:] = f32_to_bits(
            np.full(128, 4.0, dtype=np.float32))
        small_in.push_back(1)
        fpu = Fpu()
        fpu.acquire_dst()
        fpu.copy_tile(small_in, 0, 0)
        fpu.pack_tile(0, small_out)
        assert np.all(bits_to_f32(small_out.back_view_u16()) == 4.0)

    def test_pack_size_mismatch_rejected(self, sim, rig):
        cbs, fill = rig
        fill(0, np.zeros(1024))
        sram = Sram(1 << 19)
        small_out = CircularBuffer(sim, sram, 7, page_size=256, n_pages=1)
        small_out.reserve_back(1)
        sim.run()
        fpu = Fpu()
        fpu.acquire_dst()
        fpu.copy_tile(cbs[0], 0, 0)
        with pytest.raises(FpuError, match="mismatch"):
            fpu.pack_tile(0, small_out)
