"""Extended FPU ops: SFPU unaries, reductions, matmul, transpose.

The paper lists these among the FPU's capabilities ("squares, logs,
trigonometric functions, conditionals and reductions, as well as ...
matrix multiplication, ReLU, sigmoid, and transposition"); they are what
ML users of the card (the paper's related work) build on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.cb import CircularBuffer
from repro.arch.fpu import Fpu, FpuError
from repro.arch.sram import Sram
from repro.dtypes.bf16 import bf16_round, bits_to_f32, f32_to_bits
from repro.sim import Simulator


@pytest.fixture
def rig(sim):
    sram = Sram(1 << 19)
    cbs = {i: CircularBuffer(sim, sram, i, page_size=2048, n_pages=2)
           for i in range(3)}

    def fill(cb_id, values):
        cb = cbs[cb_id]
        cb.reserve_back(1)
        sim.run()
        cb.back_view_u16()[:] = f32_to_bits(
            np.asarray(values, dtype=np.float32)).ravel()
        cb.push_back(1)
    cbs[2].reserve_back(1)
    sim.run()
    fpu = Fpu()
    fpu.acquire_dst()
    return cbs, fill, fpu


class TestUnaryOps:
    @pytest.mark.parametrize("op,fn", [
        ("exp", np.exp), ("sqrt", np.sqrt), ("square", np.square),
        ("abs", np.abs), ("sin", np.sin), ("cos", np.cos),
    ])
    def test_matches_numpy(self, rig, rng, op, fn):
        cbs, fill, fpu = rig
        x = np.abs(rng.normal(size=1024)).astype(np.float32)
        fill(0, x)
        fpu.unary_tile(op, cbs[0], 0, 0)
        want = fn(bits_to_f32(f32_to_bits(x))).astype(np.float32)
        assert np.allclose(fpu.dst_value_f32(0), want, rtol=1e-6)

    def test_relu(self, rig):
        cbs, fill, fpu = rig
        x = np.linspace(-5, 5, 1024, dtype=np.float32)
        fill(0, x)
        fpu.unary_tile("relu", cbs[0], 0, 0)
        out = fpu.dst_value_f32(0)
        assert out.min() == 0.0
        assert np.all(out[x > 0.1] > 0)

    def test_sigmoid_range(self, rig):
        cbs, fill, fpu = rig
        fill(0, np.linspace(-20, 20, 1024, dtype=np.float32))
        fpu.unary_tile("sigmoid", cbs[0], 0, 0)
        out = fpu.dst_value_f32(0)
        assert np.all((out >= 0) & (out <= 1))
        assert out[0] < 0.01 and out[-1] > 0.99

    def test_log_of_negative_is_nan(self, rig):
        cbs, fill, fpu = rig
        fill(0, np.full(1024, -1.0, dtype=np.float32))
        fpu.unary_tile("log", cbs[0], 0, 0)
        assert np.isnan(fpu.dst_value_f32(0)).all()

    def test_reciprocal_of_zero_is_inf(self, rig):
        cbs, fill, fpu = rig
        fill(0, np.zeros(1024, dtype=np.float32))
        fpu.unary_tile("reciprocal", cbs[0], 0, 0)
        assert np.isinf(fpu.dst_value_f32(0)).all()

    def test_unknown_op_rejected(self, rig):
        cbs, fill, fpu = rig
        fill(0, np.ones(1024))
        with pytest.raises(FpuError, match="unknown unary"):
            fpu.unary_tile("tanh2", cbs[0], 0, 0)


class TestReductions:
    def test_sum(self, rig):
        cbs, fill, fpu = rig
        fill(0, np.ones(1024, dtype=np.float32))
        val = fpu.reduce_tile(cbs[0], 0, 0, kind="sum")
        assert val == pytest.approx(1024.0)
        reg = fpu.dst_value_f32(0)
        assert reg.flat[0] == pytest.approx(1024.0)
        assert np.all(reg.ravel()[1:] == 0)

    def test_max(self, rig, rng):
        cbs, fill, fpu = rig
        x = rng.normal(size=1024).astype(np.float32)
        fill(0, x)
        xq = bits_to_f32(f32_to_bits(x))
        assert fpu.reduce_tile(cbs[0], 0, 0, kind="max") == \
            pytest.approx(float(xq.max()))

    def test_absmax(self, rig):
        cbs, fill, fpu = rig
        x = np.zeros(1024, dtype=np.float32)
        x[77] = -9.0
        fill(0, x)
        assert fpu.reduce_tile(cbs[0], 0, 0, kind="absmax") == \
            pytest.approx(9.0)

    def test_unknown_kind(self, rig):
        cbs, fill, fpu = rig
        fill(0, np.ones(1024))
        with pytest.raises(FpuError, match="unknown reduction"):
            fpu.reduce_tile(cbs[0], 0, 0, kind="mean")


class TestMatmul:
    def test_identity(self, rig, rng):
        cbs, fill, fpu = rig
        a = rng.normal(size=(32, 32)).astype(np.float32)
        eye = np.eye(32, dtype=np.float32)
        fill(0, a.ravel())
        fill(1, eye.ravel())
        fpu.matmul_tiles(cbs[0], cbs[1], 0, 0, 0)
        aq = bits_to_f32(f32_to_bits(a))
        assert np.allclose(fpu.dst_value_f32(0), aq, atol=1e-5)

    def test_matches_numpy(self, rig, rng):
        cbs, fill, fpu = rig
        a = rng.normal(size=(32, 32)).astype(np.float32)
        b = rng.normal(size=(32, 32)).astype(np.float32)
        fill(0, a.ravel())
        fill(1, b.ravel())
        fpu.matmul_tiles(cbs[0], cbs[1], 0, 0, 0)
        want = (bits_to_f32(f32_to_bits(a)).reshape(32, 32)
                @ bits_to_f32(f32_to_bits(b)).reshape(32, 32))
        assert np.allclose(fpu.dst_value_f32(0), want, rtol=1e-5)

    def test_accumulate(self, rig):
        cbs, fill, fpu = rig
        eye = np.eye(32, dtype=np.float32)
        fill(0, eye.ravel())
        fill(1, eye.ravel())
        fpu.matmul_tiles(cbs[0], cbs[1], 0, 0, 0)
        # refill pages (they were popped? no: we never popped; wait_front
        # semantics unused here — front pages still hold the data)
        fpu.matmul_tiles(cbs[0], cbs[1], 0, 0, 0, accumulate=True)
        assert np.allclose(fpu.dst_value_f32(0), 2 * eye)

    def test_accumulate_into_empty_rejected(self, rig):
        cbs, fill, fpu = rig
        fill(0, np.ones(1024))
        fill(1, np.ones(1024))
        with pytest.raises(FpuError, match="accumulate"):
            fpu.matmul_tiles(cbs[0], cbs[1], 0, 0, 3, accumulate=True)

    def test_requires_full_tiles(self, sim):
        sram = Sram(1 << 18)
        small = CircularBuffer(sim, sram, 0, page_size=256, n_pages=1)
        small.reserve_back(1)
        sim.run()
        small.push_back(1)
        fpu = Fpu()
        fpu.acquire_dst()
        with pytest.raises(FpuError, match="full"):
            fpu.matmul_tiles(small, small, 0, 0, 0)

    def test_pack_after_matmul(self, rig, rng):
        cbs, fill, fpu = rig
        a = rng.normal(size=(32, 32)).astype(np.float32)
        b = rng.normal(size=(32, 32)).astype(np.float32)
        fill(0, a.ravel())
        fill(1, b.ravel())
        fpu.matmul_tiles(cbs[0], cbs[1], 0, 0, 0)
        fpu.pack_tile(0, cbs[2])
        out = bits_to_f32(cbs[2].back_view_u16()).reshape(32, 32)
        want = bf16_round((bits_to_f32(f32_to_bits(a)).reshape(32, 32)
                           @ bits_to_f32(f32_to_bits(b)).reshape(32, 32)))
        assert np.array_equal(out, want)


class TestTranspose:
    def test_transpose(self, rig, rng):
        cbs, fill, fpu = rig
        a = rng.normal(size=(32, 32)).astype(np.float32)
        fill(0, a.ravel())
        fpu.transpose_tile(cbs[0], 0, 0)
        aq = bits_to_f32(f32_to_bits(a)).reshape(32, 32)
        assert np.array_equal(fpu.dst_value_f32(0), aq.T)

    def test_involution(self, rig, rng):
        cbs, fill, fpu = rig
        a = rng.normal(size=(32, 32)).astype(np.float32)
        fill(0, a.ravel())
        fpu.transpose_tile(cbs[0], 0, 0)
        fpu.pack_tile(0, cbs[2])
        # transpose the packed transpose: back to (the BF16 rounding of) a
        first = cbs[2].back_view_u16().copy()
        cbs[2].push_back(1)
        fpu.transpose_tile(cbs[2], 0, 1)
        aq = bits_to_f32(first).reshape(32, 32).T
        assert np.array_equal(fpu.dst_value_f32(1), aq)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 999))
def test_matmul_transpose_identity_property(seed):
    """(A @ B)ᵀ == Bᵀ @ Aᵀ at f32 register precision."""
    sim = Simulator()
    sram = Sram(1 << 19)
    cbs = {i: CircularBuffer(sim, sram, i, page_size=2048, n_pages=1)
           for i in range(2)}
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(32, 32)).astype(np.float32)
    b = rng.normal(size=(32, 32)).astype(np.float32)
    for i, m in ((0, a), (1, b)):
        cbs[i].reserve_back(1)
        sim.run()
        cbs[i].back_view_u16()[:] = f32_to_bits(m).ravel()
        cbs[i].push_back(1)
    fpu = Fpu()
    fpu.acquire_dst()
    fpu.matmul_tiles(cbs[0], cbs[1], 0, 0, 0)
    ab_t = fpu.dst_value_f32(0).reshape(32, 32).T
    aq = bits_to_f32(f32_to_bits(a)).reshape(32, 32)
    bq = bits_to_f32(f32_to_bits(b)).reshape(32, 32)
    assert np.allclose(ab_t, bq.T @ aq.T, rtol=1e-5, atol=1e-6)
