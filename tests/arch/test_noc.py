"""NoC transfer tests: functional movement, timing composition, turnaround."""

import numpy as np
import pytest

from repro.arch.dram import Dram
from repro.arch.noc import Noc, ReadJob, WriteJob
from repro.perfmodel.calibration import DEFAULT_COSTS
from repro.sim import Simulator


@pytest.fixture
def noc_rig(sim):
    dram = Dram(sim, DEFAULT_COSTS, bank_capacity=1 << 16)
    noc = Noc(sim, 0, dram, DEFAULT_COSTS)
    link = noc.new_link("test")
    return dram, noc, link


class TestFunctional:
    def test_read_returns_bank_bytes(self, sim, noc_rig, rng):
        dram, noc, link = noc_rig
        data = rng.integers(0, 256, 64, dtype=np.uint8)
        dram.bank(0).write(0, data)
        got, ev = noc.read(link, ReadJob(0, 0, 64))
        assert np.array_equal(got, data)

    def test_write_lands_in_bank(self, sim, noc_rig):
        dram, noc, link = noc_rig
        noc.write(link, WriteJob(2, 32, np.full(16, 9, dtype=np.uint8)))
        assert np.all(dram.bank(2).read(32, 16) == 9)

    def test_empty_burst_completes_immediately(self, sim, noc_rig):
        _, noc, link = noc_rig
        ev = noc.read_burst(link, [])
        assert ev.triggered

    def test_stats_counters(self, sim, noc_rig):
        dram, noc, link = noc_rig
        noc.read_burst(link, [ReadJob(0, 0, 32), ReadJob(0, 32, 32)])
        noc.write_burst(link, [WriteJob(0, 0, np.zeros(16, dtype=np.uint8))])
        assert noc.stats.read_requests == 2
        assert noc.stats.read_bytes == 64
        assert noc.stats.write_requests == 1
        assert noc.stats.write_bytes == 16

    def test_sram_copy(self, sim, noc_rig):
        _, noc, link = noc_rig
        src = np.arange(32, dtype=np.uint8)
        dst = np.zeros(32, dtype=np.uint8)
        noc.sram_copy(link, src, dst)
        assert np.array_equal(dst, src)
        with pytest.raises(ValueError):
            noc.sram_copy(link, src, np.zeros(16, dtype=np.uint8))

    def test_invalid_noc_id(self, sim):
        dram = Dram(sim, DEFAULT_COSTS, bank_capacity=1 << 16)
        with pytest.raises(ValueError):
            Noc(sim, 2, dram)


class TestTiming:
    def _finish(self, sim, ev):
        def proc():
            yield ev
            return sim.now
        return sim.run(until=sim.process(proc()))

    def test_completion_includes_latency(self, sim, noc_rig):
        _, noc, link = noc_rig
        _, ev = noc.read(link, ReadJob(0, 0, 64))
        t = self._finish(sim, ev)
        c = DEFAULT_COSTS
        expected = max(64 / c.noc_link_bw, 64 / c.dram_bank_bw) + c.read_latency
        assert t == pytest.approx(expected, rel=1e-6)

    def test_link_serializes_transfers(self, sim, noc_rig):
        _, noc, link = noc_rig
        n = 1 << 14
        noc.read(link, ReadJob(0, 0, n))
        _, ev = noc.read(link, ReadJob(0, 0, n))
        t = self._finish(sim, ev)
        c = DEFAULT_COSTS
        assert t == pytest.approx(2 * n / c.noc_link_bw + c.read_latency,
                                  rel=1e-3)

    def test_bank_shared_between_links(self, sim, noc_rig):
        """Two links reading the same bank are bank-limited together."""
        dram, noc, link_a = noc_rig
        link_b = noc.new_link("b")
        n = 1 << 15
        c = DEFAULT_COSTS
        _, ev_a = noc.read(link_a, ReadJob(0, 0, n))
        _, ev_b = noc.read(link_b, ReadJob(0, 0, n))
        tb = self._finish(sim, ev_b)
        # bank serves 2n total; second completion is bank-bound
        assert tb >= 2 * n / c.dram_bank_bw

    def test_turnaround_charged_on_direction_flip(self, sim, noc_rig):
        """A read→write flip at the bank costs exactly one turnaround more
        than a write following a write."""
        c = DEFAULT_COSTS

        def run_pair(first_dir):
            s = Simulator()
            dram = Dram(s, c, bank_capacity=1 << 16)
            noc = Noc(s, 0, dram, c)
            link = noc.new_link("x")
            if first_dir == "r":
                noc.read(link, ReadJob(0, 0, 32))
            else:
                noc.write(link, WriteJob(0, 0, np.zeros(32, dtype=np.uint8)))
            ev = noc.write(link, WriteJob(0, 64, np.zeros(32, dtype=np.uint8)))

            def proc():
                yield ev
                return s.now
            return s.run(until=s.process(proc()))

        t_flip = run_pair("r")
        t_same = run_pair("w")
        # within ~10 ns: in the no-flip case the link booking partially
        # masks the (tiny) bank service time
        assert t_flip - t_same == pytest.approx(c.dram_turnaround, abs=1e-8)

    def test_replay_cheaper_than_normal(self, sim, noc_rig):
        _, noc, link = noc_rig
        n = 1 << 15
        _, ev_a = noc.read(link, ReadJob(0, 0, n))
        ta = self._finish(sim, ev_a)
        sim2 = Simulator()
        dram2 = Dram(sim2, DEFAULT_COSTS, bank_capacity=1 << 16)
        noc2 = Noc(sim2, 0, dram2, DEFAULT_COSTS)
        link2 = noc2.new_link("x")
        _, ev_b = noc2.read(link2, ReadJob(0, 0, n), replay=True)

        def proc():
            yield ev_b
            return sim2.now
        tb = sim2.run(until=sim2.process(proc()))
        assert tb < ta

    def test_interleaved_link_faster(self, sim, noc_rig):
        _, noc, link = noc_rig
        n = 1 << 15
        _, ev = noc.read(link, ReadJob(0, 0, n), interleaved=True)
        t_int = self._finish(sim, ev)
        c = DEFAULT_COSTS
        assert t_int < n / c.noc_link_bw + c.read_latency

    def test_book_read_matches_burst_timing(self, sim):
        """The uniform-path booking must time like an equivalent burst."""
        c = DEFAULT_COSTS
        sim_a, sim_b = Simulator(), Simulator()
        n = 4096
        out = []
        for s, use_book in ((sim_a, False), (sim_b, True)):
            dram = Dram(s, c, bank_capacity=1 << 16)
            noc = Noc(s, 0, dram, c)
            link = noc.new_link("x")
            if use_book:
                ev = noc.book_read(link, 0, n, 4)
            else:
                jobs = [ReadJob(0, i * (n // 4), n // 4) for i in range(4)]
                ev = noc.read_burst(link, jobs)

            def proc(ss, ee):
                yield ee
                return ss.now
            out.append(s.run(until=s.process(proc(s, ev))))
        assert out[0] == pytest.approx(out[1], rel=1e-9)
