"""L1 SRAM allocator tests."""

import pytest

from repro.arch.sram import Sram, SramExhausted


class TestAllocation:
    def test_starts_above_reserved(self):
        sram = Sram()
        assert sram.allocate(64) >= Sram.RESERVED

    def test_alignment(self):
        sram = Sram()
        sram.allocate(5)
        addr = sram.allocate(64, align=64)
        assert addr % 64 == 0

    def test_allocations_disjoint(self):
        sram = Sram()
        a = sram.allocate(100)
        b = sram.allocate(100)
        assert b >= a + 100

    def test_exhaustion(self):
        sram = Sram(32 * 1024)
        with pytest.raises(SramExhausted):
            sram.allocate(64 * 1024)

    def test_exhaustion_message_mentions_free(self):
        sram = Sram(32 * 1024)
        with pytest.raises(SramExhausted, match="free"):
            sram.allocate(1 << 20)

    def test_one_megabyte_default(self):
        assert Sram().capacity == 1 << 20

    def test_bad_params(self):
        sram = Sram()
        with pytest.raises(ValueError):
            sram.allocate(0)
        with pytest.raises(ValueError):
            sram.allocate(8, align=3)
        with pytest.raises(ValueError):
            Sram(capacity=Sram.RESERVED)

    def test_free_accounting(self):
        sram = Sram()
        before = sram.free
        sram.allocate(1024, align=32)
        assert sram.free <= before - 1024


class TestViews:
    def test_byte_view_is_writable_window(self):
        sram = Sram()
        a = sram.allocate(16)
        sram.view(a, 16)[:] = 0xFF
        assert all(sram.mem[a:a + 16] == 0xFF)
        assert sram.mem[a - 1] != 0xFF

    def test_u16_view(self):
        sram = Sram()
        a = sram.allocate(8, align=32)
        sram.view_u16(a, 4)[:] = 0x1234
        assert sram.view(a, 2)[0] == 0x34  # little-endian

    def test_u16_requires_even_address(self):
        sram = Sram()
        with pytest.raises(ValueError):
            sram.view_u16(17, 2)

    def test_u32_view(self):
        sram = Sram()
        a = sram.allocate(8, align=32)
        sram.view_u32(a, 1)[:] = 0xDEADBEEF
        assert int(sram.view_u16(a, 2)[0]) == 0xBEEF

    def test_out_of_range(self):
        sram = Sram()
        with pytest.raises(IndexError):
            sram.view(sram.capacity - 4, 8)
