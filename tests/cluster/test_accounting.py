"""Accounting regression: stalled cards draw idle power, exactly.

Pins the identity the tentpole fix establishes:

    ``energy_j == Σ busy_energy_i + Σ stall_i · idle_w``   (exact)
    ``busy_i + stall_i == wall_time_s``  for every card    (exact)

both on :class:`~repro.cluster.ClusterResult` and on the arch-level
:class:`~repro.arch.cluster.Cluster` mirror (``record_stall`` /
``record_host_stage``), so halo-exchange barriers can never silently
vanish from the energy ledger again.
"""

import pytest

from repro.arch.cluster import Cluster
from repro.cluster import ClusterConfig, ClusterSolver
from repro.perfmodel.calibration import DEFAULT_COSTS


def solve(**kw):
    defaults = dict(nx=64, ny=64, iterations=6, cards_y=2, cards_x=2)
    defaults.update(kw)
    return ClusterSolver(ClusterConfig(**defaults)).solve()


class TestResultIdentity:
    def test_energy_identity_exact_model(self):
        res = solve()
        assert res.energy_j == res.energy_identity_j()

    def test_energy_identity_exact_des(self):
        res = solve(nx=64, ny=32, iterations=3, cards_y=2, cards_x=1,
                    cores_y=2, cores_x=2, timing="des")
        assert res.energy_j == pytest.approx(res.energy_identity_j(),
                                             abs=1e-15)

    def test_busy_plus_stall_is_wall_per_card(self):
        res = solve()
        for busy, stall in zip(res.busy_s, res.stall_s):
            assert busy + stall == res.wall_time_s

    def test_stalls_include_host_staging(self):
        """Every card idles through scatter/exchange/gather, so per-card
        stall is at least the total host staging time."""
        res = solve()
        assert res.host_stage_s > 0
        for stall in res.stall_s:
            assert stall >= res.host_stage_s

    def test_uneven_split_stalls_fast_cards(self):
        """A 3-way split of 64 rows gives one card fewer rows: fast
        cards must accrue more stall, but identical wall and energy
        identity still hold."""
        res = solve(ny=64, cards_y=3, cards_x=1)
        assert max(res.stall_s) > min(res.stall_s)
        assert res.energy_j == res.energy_identity_j()

    def test_idle_power_priced_at_calibrated_idle_watts(self):
        res = solve()
        assert res.power_idle_w == DEFAULT_COSTS.card_power_idle_w
        stall_j = sum(s * res.power_idle_w for s in res.stall_s)
        busy_j = sum(res.busy_energy_j)
        assert res.energy_j == busy_j + stall_j


class TestArchClusterMirror:
    def test_wall_includes_recorded_stalls_and_staging(self):
        cluster = Cluster(2)
        cluster[0].sim.run(until=2e-3)
        cluster[1].sim.run(until=1e-3)
        cluster.record_stall(1, 1e-3)       # card 1 waited at the barrier
        cluster.record_host_stage(5e-4)
        assert cluster.wall_time_s == pytest.approx(2.5e-3)
        assert cluster.stall_s == [0.0, 1e-3]
        assert cluster.host_stage_s == 5e-4

    def test_energy_charges_idle_for_stalled_cards(self):
        cluster = Cluster(2)
        cluster[0].sim.run(until=2e-3)
        cluster[1].sim.run(until=1e-3)
        before = cluster.energy_j
        cluster.record_host_stage(1e-3)     # both cards idle 1 ms longer
        after = cluster.energy_j
        extra = after - before
        assert extra == pytest.approx(
            2 * 1e-3 * DEFAULT_COSTS.card_power_idle_w)

    def test_energy_identity_exact(self):
        cluster = Cluster(3)
        for i, card in enumerate(cluster):
            card.sim.run(until=(i + 1) * 1e-4)
        cluster.record_stall(0, 2e-4)
        cluster.record_host_stage(1e-4)
        wall = cluster.wall_time_s
        expect = sum(card.energy.energy_j
                     + (wall - card.sim.now)
                     * DEFAULT_COSTS.card_power_idle_w
                     for card in cluster)
        assert cluster.energy_j == expect

    def test_negative_charges_rejected(self):
        cluster = Cluster(1)
        with pytest.raises(ValueError):
            cluster.record_stall(0, -1e-9)
        with pytest.raises(ValueError):
            cluster.record_host_stage(-1e-9)

    def test_solver_mirror_matches_result(self):
        """The DES solver's arch-Cluster ledger agrees with its result."""
        cfg = ClusterConfig(nx=64, ny=32, iterations=3, cards_y=2,
                            cards_x=1, cores_y=2, cores_x=2, timing="des")
        solver = ClusterSolver(cfg)
        res = solver.solve()
        mirror = solver.last_des_cluster
        assert mirror is not None
        assert mirror.wall_time_s == pytest.approx(res.wall_time_s)
        assert mirror.energy_j == pytest.approx(res.energy_j)
