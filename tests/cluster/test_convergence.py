"""Differential convergence: the residual *trajectory* matches per step.

Bit-identity of the final grid is necessary but not sufficient evidence
that the halo exchange is right at every iteration — a wrong exchange
could in principle cancel out.  Here the residual after *each* sweep is
compared element-wise against the single-card trajectory, for three
configurations including a non-square grid.
"""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ClusterSolver
from repro.core.grid import LaplaceProblem
from repro.cpu.jacobi import jacobi_solve_bf16, residual_f32
from repro.dtypes.bf16 import bits_to_f32

CONFIGS = [
    pytest.param(48, 48, 2, 1, id="square-1d"),
    pytest.param(64, 32, 2, 2, id="nonsquare-2d"),
    pytest.param(40, 56, 1, 2, id="nonsquare-1d-x"),
]

N_ITERS = 8


def trajectories(nx, ny, cards_y, cards_x):
    """(residuals, grids) after each sweep for both solvers."""
    ref_bits = LaplaceProblem(nx=nx, ny=ny).initial_grid_bf16()
    cluster_res, single_res = [], []
    for k in range(1, N_ITERS + 1):
        cfg = ClusterConfig(nx=nx, ny=ny, iterations=k,
                            cards_y=cards_y, cards_x=cards_x)
        multi = ClusterSolver(cfg).solve().grid_bits
        single = jacobi_solve_bf16(ref_bits, k)
        assert np.array_equal(multi, single), f"diverged at sweep {k}"
        cluster_res.append(residual_f32(bits_to_f32(multi)))
        single_res.append(residual_f32(bits_to_f32(single)))
    return cluster_res, single_res


class TestResidualTrajectory:
    @pytest.mark.parametrize("nx,ny,cards_y,cards_x", CONFIGS)
    def test_elementwise_match(self, nx, ny, cards_y, cards_x):
        multi, single = trajectories(nx, ny, cards_y, cards_x)
        assert multi == single          # exact float equality, per sweep

    def test_residual_decreases(self):
        multi, _ = trajectories(48, 48, 2, 1)
        assert multi[-1] < multi[0]
