"""The headline differential harness: multi-card == single-card, to the bit.

Every decomposition shape — 1 card, 1D-Y bands, 1D-X columns, full 2D,
and the DES-timed configuration — must stitch back to *exactly* the
bits the single-card BF16 reference produces.  Timing and energy are
allowed to differ between shapes; the answer is not.
"""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ClusterSolver
from repro.core.grid import LaplaceProblem
from repro.core.multicore import run_multicard_functional
from repro.cpu.jacobi import jacobi_solve_bf16


def reference(nx: int, ny: int, iterations: int) -> np.ndarray:
    return jacobi_solve_bf16(
        LaplaceProblem(nx=nx, ny=ny).initial_grid_bf16(), iterations)


SHAPES = [
    pytest.param(1, 1, id="1card"),
    pytest.param(2, 1, id="1d-y"),
    pytest.param(1, 2, id="1d-x"),
    pytest.param(4, 1, id="1d-y-deep"),
    pytest.param(2, 2, id="2d"),
    pytest.param(3, 2, id="2d-uneven"),
]


class TestBitIdentity:
    @pytest.mark.parametrize("cards_y,cards_x", SHAPES)
    def test_model_timing(self, cards_y, cards_x):
        cfg = ClusterConfig(nx=64, ny=48, iterations=9,
                            cards_y=cards_y, cards_x=cards_x)
        res = ClusterSolver(cfg).solve()
        assert np.array_equal(res.grid_bits, reference(64, 48, 9))

    def test_des_timing(self):
        cfg = ClusterConfig(nx=64, ny=32, iterations=3,
                            cards_y=2, cards_x=1, cores_y=2, cores_x=2,
                            timing="des")
        res = ClusterSolver(cfg).solve()
        assert np.array_equal(res.grid_bits, reference(64, 32, 3))

    def test_shapes_agree_with_each_other(self):
        grids = []
        for cy, cx in ((1, 1), (2, 2), (4, 1)):
            cfg = ClusterConfig(nx=64, ny=64, iterations=6,
                                cards_y=cy, cards_x=cx)
            grids.append(ClusterSolver(cfg).solve().grid_bits)
        assert np.array_equal(grids[0], grids[1])
        assert np.array_equal(grids[0], grids[2])

    def test_exchange_none_reproduces_frozen_halo_mode(self):
        """``exchange="none"`` is the paper's per-card frozen-halo run —
        it matches run_multicard_functional, NOT the global reference."""
        p = LaplaceProblem(nx=64, ny=64)
        cfg = ClusterConfig(nx=64, ny=64, iterations=5,
                            cards_y=2, cards_x=1, exchange="none")
        res = ClusterSolver(cfg).solve()
        frozen = run_multicard_functional(p.initial_grid_bf16(), 5,
                                          n_cards=2)
        assert np.array_equal(res.grid_bits, frozen)
        assert not np.array_equal(res.grid_bits, reference(64, 64, 5))


class TestDeterminism:
    def test_repeat_solve_byte_identical(self):
        cfg = ClusterConfig(nx=48, ny=48, iterations=7,
                            cards_y=2, cards_x=2)
        a = ClusterSolver(cfg).solve()
        b = ClusterSolver(cfg).solve()
        assert np.array_equal(a.grid_bits, b.grid_bits)
        assert a.wall_time_s == b.wall_time_s
        assert a.energy_j == b.energy_j

    def test_payload_identical_across_jobs(self):
        """The sweep payload is byte-identical under -j 2 vs -j 1."""
        import json

        from repro.cluster import cluster_sweep_configs, run_cluster_sweep

        configs = cluster_sweep_configs("weak", (1, 2), base_nx=32,
                                        base_ny=32, iterations=4)
        serial = run_cluster_sweep(configs, jobs=1, cache=False)
        parallel = run_cluster_sweep(configs, jobs=2, cache=False)
        assert json.dumps(serial, sort_keys=True) == \
            json.dumps(parallel, sort_keys=True)
        assert all(p["bit_identical"] for p in serial)
