"""Fault-path contract: a dead card never produces a silent wrong answer.

With checkpoints enabled, a :class:`~repro.faults.plan.CardFailure`
rolls the solve back, remaps the dead card's block onto a survivor, and
still finishes *bit-identical* to the single-card reference.  Without
checkpoints the solve sheds loudly with a typed
:class:`~repro.cluster.CardFailedError`.  Losing every card is a typed
:class:`~repro.cluster.ClusterError`.  There is no third outcome.
"""

import numpy as np
import pytest

from repro.cluster import (
    CardFailedError,
    ClusterConfig,
    ClusterError,
    ClusterSolver,
)
from repro.core.grid import LaplaceProblem
from repro.cpu.jacobi import jacobi_solve_bf16
from repro.faults import CardFailure, FaultPlan


def reference(nx, ny, iterations):
    return jacobi_solve_bf16(
        LaplaceProblem(nx=nx, ny=ny).initial_grid_bf16(), iterations)


class TestCheckpointRestart:
    def test_single_failure_still_bit_identical(self):
        cfg = ClusterConfig(nx=48, ny=48, iterations=8, cards_y=2,
                            cards_x=1, checkpoint_every=2)
        plan = FaultPlan(seed=0, card_failures=(CardFailure(5, 0, 0),))
        res = ClusterSolver(cfg).solve(plan=plan)
        assert res.restarts == 1
        assert res.failed_cards == ((0, 0),)
        assert res.remap == (((0, 0), (1, 0)),)
        assert np.array_equal(res.grid_bits, reference(48, 48, 8))

    def test_failure_costs_time_but_not_correctness(self):
        cfg = ClusterConfig(nx=48, ny=48, iterations=8, cards_y=2,
                            cards_x=1, checkpoint_every=2)
        clean = ClusterSolver(cfg).solve()
        plan = FaultPlan(seed=0, card_failures=(CardFailure(5, 1, 0),))
        faulty = ClusterSolver(cfg).solve(plan=plan)
        assert np.array_equal(clean.grid_bits, faulty.grid_bits)
        assert faulty.wall_time_s > clean.wall_time_s
        assert faulty.energy_j > clean.energy_j

    def test_two_failures_on_2d_grid(self):
        cfg = ClusterConfig(nx=48, ny=48, iterations=10, cards_y=2,
                            cards_x=2, checkpoint_every=5)
        plan = FaultPlan(seed=0, card_failures=(CardFailure(3, 0, 1),
                                        CardFailure(7, 1, 0)))
        res = ClusterSolver(cfg).solve(plan=plan)
        assert res.restarts == 2
        assert set(res.failed_cards) == {(0, 1), (1, 0)}
        assert np.array_equal(res.grid_bits, reference(48, 48, 10))

    def test_generated_plan_survives(self):
        plan = FaultPlan.generate(seed=11, n_card_failures=1,
                                  iterations=6, cards=(2, 2))
        assert len(plan.card_failures) == 1
        cfg = ClusterConfig(nx=32, ny=32, iterations=6, cards_y=2,
                            cards_x=2, checkpoint_every=3)
        res = ClusterSolver(cfg).solve(plan=plan)
        assert np.array_equal(res.grid_bits, reference(32, 32, 6))


class TestLoudShedding:
    def test_no_checkpoints_raises_typed_error(self):
        cfg = ClusterConfig(nx=32, ny=32, iterations=6,
                            cards_y=2, cards_x=1)     # checkpoint_every=0
        plan = FaultPlan(seed=0, card_failures=(CardFailure(2, 1, 0),))
        with pytest.raises(CardFailedError) as err:
            ClusterSolver(cfg).solve(plan=plan)
        assert err.value.card == (1, 0)
        assert err.value.iteration == 2
        assert isinstance(err.value, ClusterError)

    def test_all_cards_dead_is_cluster_error(self):
        cfg = ClusterConfig(nx=32, ny=32, iterations=6, cards_y=2,
                            cards_x=1, checkpoint_every=2)
        plan = FaultPlan(seed=0, card_failures=(CardFailure(1, 0, 0),
                                        CardFailure(1, 1, 0)))
        with pytest.raises(ClusterError):
            ClusterSolver(cfg).solve(plan=plan)

    def test_generator_always_leaves_a_survivor(self):
        plan = FaultPlan.generate(seed=0, n_card_failures=99,
                                  iterations=8, cards=(2, 2))
        assert len(plan.card_failures) == 3   # 4 cards - 1 survivor


class TestPlanRoundTrip:
    def test_card_failures_survive_to_dict_from_dict(self):
        plan = FaultPlan.generate(seed=7, n_card_failures=2,
                                  iterations=9, cards=(3, 2))
        back = FaultPlan.from_dict(plan.to_dict())
        assert back.card_failures == plan.card_failures
        assert back.n_faults == plan.n_faults
        assert "card failure" in plan.describe()
