"""Property-based decomposition tests: any shape that plans, stitches.

Hypothesis draws random grid sizes x card counts x 1D/2D splits; every
drawn configuration must (a) partition the interior exactly, (b) stitch
back to the single-card bits.  Degenerate shapes — one card, more cards
than rows, prime dimensions — are pinned explicitly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    ClusterConfig,
    ClusterError,
    ClusterSolver,
    card_splits,
    exchange_strips,
    plan_cards,
)
from repro.core.grid import LaplaceProblem
from repro.cpu.jacobi import jacobi_solve_bf16


class TestPlanProperties:
    @given(nx=st.integers(4, 96), ny=st.integers(4, 96),
           cards_y=st.integers(1, 4), cards_x=st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_partition_is_exact(self, nx, ny, cards_y, cards_x):
        if cards_y > ny or cards_x > nx:
            with pytest.raises(ValueError):
                plan_cards(nx, ny, cards_y, cards_x)
            return
        cards = plan_cards(nx, ny, cards_y, cards_x)
        assert sum(s.ny * s.nx for row in cards for s in row) == nx * ny
        # row bands tile Y, column bands tile X, with no gaps or overlap
        assert sum(row[0].ny for row in cards) == ny
        assert sum(s.nx for s in cards[0]) == nx

    @given(n=st.integers(1, 32))
    @settings(max_examples=32, deadline=None)
    def test_card_splits_cover_n(self, n):
        cy, cx = card_splits(n)
        assert cy * cx == n and cy >= cx >= 1

    @given(nx=st.integers(4, 48), ny=st.integers(4, 48),
           cards_y=st.integers(1, 3), cards_x=st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_strips_are_symmetric(self, nx, ny, cards_y, cards_x):
        if cards_y > ny or cards_x > nx:
            return
        cards = plan_cards(nx, ny, cards_y, cards_x)
        strips = exchange_strips(cards)
        directed = {(s.src, s.dst) for s in strips}
        assert len(directed) == len(strips)       # no duplicate strips
        for s in strips:
            assert (s.dst, s.src) in directed     # every edge both ways


class TestSolveProperties:
    @given(nx=st.integers(6, 40), ny=st.integers(6, 40),
           cards_y=st.integers(1, 3), cards_x=st.integers(1, 3),
           iterations=st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_random_shapes_bit_identical(self, nx, ny, cards_y, cards_x,
                                         iterations):
        if cards_y > ny or cards_x > nx:
            return
        cfg = ClusterConfig(nx=nx, ny=ny, iterations=iterations,
                            cards_y=cards_y, cards_x=cards_x)
        res = ClusterSolver(cfg).solve()
        ref = jacobi_solve_bf16(
            LaplaceProblem(nx=nx, ny=ny).initial_grid_bf16(), iterations)
        assert np.array_equal(res.grid_bits, ref)


class TestDegenerateShapes:
    def test_one_card_is_the_reference(self):
        cfg = ClusterConfig(nx=32, ny=32, iterations=5)
        res = ClusterSolver(cfg).solve()
        ref = jacobi_solve_bf16(
            LaplaceProblem(nx=32, ny=32).initial_grid_bf16(), 5)
        assert np.array_equal(res.grid_bits, ref)
        assert res.exchange.n_strips == 0
        assert res.exchange.bytes_moved == 0

    def test_more_cards_than_rows_is_typed_error(self):
        with pytest.raises((ClusterError, ValueError)):
            ClusterSolver(ClusterConfig(nx=32, ny=4, iterations=1,
                                        cards_y=5, cards_x=1))

    def test_prime_dimensions(self):
        cfg = ClusterConfig(nx=37, ny=23, iterations=4,
                            cards_y=3, cards_x=2)
        res = ClusterSolver(cfg).solve()
        ref = jacobi_solve_bf16(
            LaplaceProblem(nx=37, ny=23).initial_grid_bf16(), 4)
        assert np.array_equal(res.grid_bits, ref)

    def test_prime_card_count_splits_1d(self):
        assert card_splits(7) == (7, 1)
        assert card_splits(13) == (13, 1)
