"""Scaling sweeps: schema-stable, byte-identical, differential inside.

The weak/strong sweep artifacts (JSON doc + rendered table) must be
byte-identical across repeat runs and across ``-j N`` — they are the
objects the ``cluster-smoke`` CI job ``cmp``-gates — and every sweep
point carries its own bit-identity differential check.
"""

import json

from repro.cluster import (
    SWEEP_SCHEMA,
    cluster_sweep_configs,
    doc_to_json,
    render_cluster_report,
    run_cluster_sweep,
    sweep_to_doc,
)

CARDS = (1, 2, 4)


def run(mode, jobs=1, **kw):
    kw.setdefault("base_nx", 32)
    kw.setdefault("base_ny", 32)
    kw.setdefault("iterations", 4)
    configs = cluster_sweep_configs(mode, CARDS, **kw)
    return run_cluster_sweep(configs, jobs=jobs, cache=False)


class TestSchema:
    def test_doc_shape(self):
        doc = sweep_to_doc("weak", run("weak"))
        assert doc["schema"] == SWEEP_SCHEMA
        assert doc["mode"] == "weak"
        assert len(doc["points"]) == len(CARDS)
        for point in doc["points"]:
            assert point["bit_identical"] is True
            assert point["exchange_bytes"] >= 0
            assert point["wall_time_s"] > 0

    def test_no_wallclock_fields(self):
        """Nothing in the doc may come from the host clock."""
        text = doc_to_json(sweep_to_doc("strong", run("strong")))
        for banned in ("timestamp", "date", "hostname", "duration"):
            assert banned not in text

    def test_weak_grows_grid_strong_fixes_it(self):
        weak = run("weak")
        strong = run("strong")
        assert weak[0]["nx"] * weak[0]["ny"] \
            < weak[-1]["nx"] * weak[-1]["ny"]
        assert strong[0]["nx"] == strong[-1]["nx"]
        assert strong[0]["ny"] == strong[-1]["ny"]


class TestByteIdentity:
    def test_repeat_runs_identical(self):
        a = doc_to_json(sweep_to_doc("weak", run("weak")))
        b = doc_to_json(sweep_to_doc("weak", run("weak")))
        assert a == b

    def test_jobs_invariant(self):
        serial = run("strong", jobs=1)
        threaded = run("strong", jobs=2)
        assert doc_to_json(sweep_to_doc("strong", serial)) == \
            doc_to_json(sweep_to_doc("strong", threaded))

    def test_report_render_stable(self):
        points = run("weak")
        a = render_cluster_report("weak", points)
        b = render_cluster_report("weak", points)
        assert a == b
        assert f"{len(points)}/{len(points)} point(s) bit-identical" in a

    def test_json_is_sorted_and_newline_terminated(self):
        text = doc_to_json(sweep_to_doc("weak", run("weak")))
        assert text.endswith("\n")
        doc = json.loads(text)
        assert text == json.dumps(doc, sort_keys=True, indent=2) + "\n"


class TestScalingShape:
    def test_sixteen_card_weak_sweep(self):
        """The acceptance floor: weak scaling to 16 cards, every point
        still bit-identical."""
        configs = cluster_sweep_configs("weak", (1, 2, 4, 8, 16),
                                        base_nx=32, base_ny=32,
                                        iterations=2)
        points = run_cluster_sweep(configs, jobs=1, cache=False)
        assert len(points) == 5
        assert all(p["bit_identical"] for p in points)
        assert points[-1]["n_cards"] == 16

    def test_2d_split(self):
        configs = cluster_sweep_configs("weak", (1, 4), split="2d",
                                        base_nx=32, base_ny=32,
                                        iterations=2)
        points = run_cluster_sweep(configs, jobs=1, cache=False)
        assert points[-1]["cards_y"] == 2 and points[-1]["cards_x"] == 2
        assert all(p["bit_identical"] for p in points)
