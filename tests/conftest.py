"""Shared fixtures: small devices and problems that keep tests fast."""

import numpy as np
import pytest

from repro.arch.device import GrayskullDevice
from repro.core.grid import LaplaceProblem
from repro.perfmodel.calibration import DEFAULT_COSTS
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def device():
    """A Grayskull with small DRAM banks (1 MiB each) for fast tests."""
    return GrayskullDevice(dram_bank_capacity=1 << 20)


@pytest.fixture
def device_factory():
    def make():
        return GrayskullDevice(dram_bank_capacity=1 << 20)
    return make


@pytest.fixture
def big_device():
    """Banks large enough for mid-sized streaming/Jacobi runs."""
    return GrayskullDevice(dram_bank_capacity=16 << 20)


@pytest.fixture
def small_problem():
    return LaplaceProblem(nx=32, ny=32)


@pytest.fixture
def problem_64():
    return LaplaceProblem(nx=64, ny=64)


@pytest.fixture
def costs():
    return DEFAULT_COSTS


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
