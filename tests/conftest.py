"""Shared fixtures: small devices and problems that keep tests fast."""

import numpy as np
import pytest

from repro.arch.device import GrayskullDevice
from repro.core.grid import LaplaceProblem
from repro.perfmodel.calibration import DEFAULT_COSTS
from repro.sim import Simulator


@pytest.fixture(autouse=True)
def _isolated_sweep_cache(monkeypatch, tmp_path):
    """Keep the sweep result cache hermetic per test.

    CLI handlers default the cache ON at ``$XDG_CACHE_HOME/repro/sweeps``;
    pointing XDG at tmp_path means tests exercising those paths can never
    read (or pollute) the user's real cache, and unsetting the env
    overrides keeps the library default (cache off) in effect.
    """
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg-cache"))
    monkeypatch.delenv("REPRO_SWEEP_CACHE", raising=False)
    monkeypatch.delenv("REPRO_SWEEP_CACHE_MAX_MB", raising=False)
    monkeypatch.delenv("REPRO_JOBS", raising=False)


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def device():
    """A Grayskull with small DRAM banks (1 MiB each) for fast tests."""
    return GrayskullDevice(dram_bank_capacity=1 << 20)


@pytest.fixture
def device_factory():
    def make():
        return GrayskullDevice(dram_bank_capacity=1 << 20)
    return make


@pytest.fixture
def big_device():
    """Banks large enough for mid-sized streaming/Jacobi runs."""
    return GrayskullDevice(dram_bank_capacity=16 << 20)


@pytest.fixture
def small_problem():
    return LaplaceProblem(nx=32, ny=32)


@pytest.fixture
def problem_64():
    return LaplaceProblem(nx=64, ny=64)


@pytest.fixture
def costs():
    return DEFAULT_COSTS


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
