"""Decomposition tests: tile batches, row batches, core-grid splits."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decomposition import (
    RowBatches,
    SubDomain,
    TileBatches,
    remap_failed,
    split_domain,
    split_extent,
)
from repro.dtypes.tiles import TILE_DIM


class TestTileBatches:
    def test_count(self):
        tb = TileBatches(128, 96)
        assert len(tb) == 4 * 3
        assert tb.batches_x == 4 and tb.batches_y == 3

    def test_row_major_order(self):
        order = [(b.by, b.bx) for b in TileBatches(64, 64)]
        assert order == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_origins(self):
        batches = list(TileBatches(64, 64))
        assert batches[3].y0 == 32 and batches[3].x0 == 32
        assert all(b.height == TILE_DIM and b.width == TILE_DIM
                   for b in batches)

    def test_tiles_cover_domain_once(self):
        covered = set()
        for b in TileBatches(96, 64):
            for y in range(b.y0, b.y0 + TILE_DIM):
                for x in range(b.x0, b.x0 + TILE_DIM, 8):
                    assert (y, x) not in covered
                    covered.add((y, x))
        assert len(covered) == 64 * (96 // 8)

    def test_non_multiple_rejected(self):
        with pytest.raises(ValueError):
            TileBatches(100, 64)

    def test_render(self):
        assert "32x32" in TileBatches(64, 64).render()


class TestRowBatches:
    def test_single_column(self):
        rb = RowBatches(nx=512, ny=10)
        assert len(rb.columns) == 1
        assert len(rb) == 10

    def test_multiple_columns_with_ragged_tail(self):
        rb = RowBatches(nx=2304, ny=4)
        assert rb.columns == [(0, 1024), (1024, 1024), (2048, 256)]
        assert len(rb) == 12

    def test_column_major_sweep_order(self):
        """Fig. 6: batches go *down* each chunk column first."""
        rb = RowBatches(nx=2048, ny=3)
        seq = [(b.x0, b.y) for b in rb]
        assert seq == [(0, 0), (0, 1), (0, 2),
                       (1024, 0), (1024, 1), (1024, 2)]

    def test_indices_sequential(self):
        rb = RowBatches(nx=2048, ny=5)
        assert [b.index for b in rb] == list(range(10))

    def test_offsets_honoured(self):
        rb = RowBatches(nx=100, ny=3, x0=50, y0=7)
        batches = list(rb)
        assert batches[0].x0 == 50 and batches[0].y == 7

    def test_invalid(self):
        with pytest.raises(ValueError):
            RowBatches(nx=0, ny=5)
        with pytest.raises(ValueError):
            RowBatches(nx=10, ny=5, chunk=0)

    def test_render(self):
        assert "batch" in RowBatches(nx=2048, ny=4).render()


class TestSplits:
    def test_split_extent_exact_cover(self):
        parts = split_extent(100, 7)
        assert sum(s for _, s in parts) == 100
        assert parts[0][0] == 0
        for (s0, c0), (s1, _c1) in zip(parts, parts[1:]):
            assert s1 == s0 + c0

    def test_split_extent_rejects_excess_parts(self):
        with pytest.raises(ValueError):
            split_extent(3, 5)

    def test_split_domain_grid(self):
        grid = split_domain(nx=100, ny=60, cores_y=3, cores_x=2)
        assert len(grid) == 3 and len(grid[0]) == 2
        total = sum(s.nx * s.ny for row in grid for s in row)
        assert total == 100 * 60

    def test_split_domain_coordinates(self):
        grid = split_domain(nx=10, ny=10, cores_y=2, cores_x=2)
        s = grid[1][1]
        assert isinstance(s, SubDomain)
        assert (s.y0, s.x0) == (5, 5)
        assert (s.ny, s.nx) == (5, 5)


class TestSplitEdgeCases:
    """Degenerate shapes the serve batcher can produce."""

    def test_more_parts_than_rows_rejected(self):
        with pytest.raises(ValueError, match="cannot split"):
            split_domain(nx=64, ny=3, cores_y=4, cores_x=1)

    def test_more_parts_than_cols_rejected(self):
        with pytest.raises(ValueError, match="cannot split"):
            split_domain(nx=3, ny=64, cores_y=1, cores_x=4)

    def test_split_extent_one_element_each(self):
        assert split_extent(4, 4) == [(0, 1), (1, 1), (2, 1), (3, 1)]

    def test_1xn_domain_row_split(self):
        """A 1-row domain can still be split along x."""
        grid = split_domain(nx=12, ny=1, cores_y=1, cores_x=3)
        assert len(grid) == 1 and len(grid[0]) == 3
        assert all(s.ny == 1 for s in grid[0])
        assert [s.nx for s in grid[0]] == [4, 4, 4]
        assert [s.x0 for s in grid[0]] == [0, 4, 8]

    def test_nx1_domain_column_split(self):
        grid = split_domain(nx=1, ny=7, cores_y=3, cores_x=1)
        assert [row[0].ny for row in grid] == [3, 2, 2]
        assert all(row[0].nx == 1 for row in grid)

    def test_1xn_rejects_any_row_split(self):
        with pytest.raises(ValueError):
            split_domain(nx=12, ny=1, cores_y=2, cores_x=1)


class TestRemapFailedBoundary:
    """remap_failed with failures on the core-grid boundary."""

    def test_corner_failure_goes_to_edge_neighbour(self):
        grid = split_domain(nx=96, ny=96, cores_y=3, cores_x=3)
        assignment = remap_failed(grid, {(0, 0)})
        # Ties on load break by Manhattan distance then coordinate: the
        # corner's nearest survivors are (0,1) and (1,0), both at
        # distance 1; (0,1) wins on coordinate order.
        assert assignment == {(0, 0): (0, 1)}

    def test_whole_boundary_row_failure(self):
        grid = split_domain(nx=96, ny=96, cores_y=3, cores_x=3)
        assignment = remap_failed(grid, {(2, 0), (2, 1), (2, 2)})
        survivors = {(iy, ix) for iy in range(2) for ix in range(3)}
        assert set(assignment) == {(2, 0), (2, 1), (2, 2)}
        assert set(assignment.values()) <= survivors
        # Least-loaded spreading: three failures land on three distinct
        # survivors rather than piling onto one.
        assert len(set(assignment.values())) == 3

    def test_boundary_failure_on_1xn_grid(self):
        """On a 1×N core row, a failed end core remaps along the row."""
        grid = split_domain(nx=64, ny=8, cores_y=1, cores_x=4)
        assignment = remap_failed(grid, {(0, 3)})
        assert assignment == {(0, 3): (0, 2)}

    def test_opposite_corners_deterministic(self):
        grid = split_domain(nx=64, ny=64, cores_y=2, cores_x=2)
        a = remap_failed(grid, {(0, 0), (1, 1)})
        b = remap_failed(grid, {(1, 1), (0, 0)})
        assert a == b
        assert set(a.values()) == {(0, 1), (1, 0)}


@settings(max_examples=50, deadline=None)
@given(nx=st.integers(1, 64), ny=st.integers(1, 64),
       cy=st.integers(1, 8), cx=st.integers(1, 8))
def test_split_domain_partitions_exactly(nx, ny, cy, cx):
    """Sub-domains tile the interior exactly once, whatever the split."""
    if cy > ny or cx > nx:
        with pytest.raises(ValueError):
            split_domain(nx, ny, cy, cx)
        return
    grid = split_domain(nx, ny, cy, cx)
    cells = set()
    for row in grid:
        for s in row:
            assert s.nx > 0 and s.ny > 0
            for y in range(s.y0, s.y0 + s.ny):
                for x in range(s.x0, s.x0 + s.nx):
                    assert (y, x) not in cells
                    cells.add((y, x))
    assert len(cells) == nx * ny
