"""LaplaceProblem and AlignedDomain layout tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grid import PAD_ELEMS, AlignedDomain, LaplaceProblem
from repro.dtypes.bf16 import BF16_BYTES, bits_to_f32


class TestLaplaceProblem:
    def test_initial_grid_shape(self):
        p = LaplaceProblem(nx=32, ny=16)
        assert p.initial_grid_f32().shape == (18, 34)

    def test_boundary_values(self):
        p = LaplaceProblem(nx=32, ny=32, left=1.0, right=-2.0, top=3.0,
                           bottom=4.0, initial=0.5)
        g = p.initial_grid_f32()
        assert np.all(g[1:-1, 0] == 1.0)
        assert np.all(g[1:-1, -1] == -2.0)
        assert np.all(g[0, 1:-1] == 3.0)
        assert np.all(g[-1, 1:-1] == 4.0)
        assert np.all(g[1:-1, 1:-1] == 0.5)

    def test_bf16_grid_matches_f32(self):
        p = LaplaceProblem(nx=32, ny=32, left=0.7)
        f = bits_to_f32(p.initial_grid_bf16())
        assert f[1, 0] == pytest.approx(0.7, rel=2 ** -8)

    def test_extrema(self):
        p = LaplaceProblem(nx=32, ny=32, left=-3.0, right=5.0, initial=1.0)
        assert p.boundary_extrema() == (-3.0, 5.0)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            LaplaceProblem(nx=0, ny=4)

    def test_render_mentions_boundaries(self):
        text = LaplaceProblem(nx=8, ny=8, left=1.5).render()
        assert "left=1.5" in text and "B" in text


class TestAlignedDomain:
    def test_geometry(self):
        layout = AlignedDomain(LaplaceProblem(nx=64, ny=32))
        assert layout.row_elems == 64 + 2 * PAD_ELEMS
        assert layout.row_bytes == layout.row_elems * BF16_BYTES
        assert layout.n_rows == 34
        assert layout.nbytes == 34 * layout.row_bytes

    def test_nx_must_be_tile_multiple(self):
        with pytest.raises(ValueError, match="multiple of 32"):
            AlignedDomain(LaplaceProblem(nx=33, ny=32))

    def test_pack_unpack_roundtrip(self, rng):
        p = LaplaceProblem(nx=64, ny=32)
        layout = AlignedDomain(p)
        grid = rng.integers(0, 2 ** 16, (34, 66), dtype=np.uint16)
        assert np.array_equal(layout.unpack(layout.pack(grid)), grid)

    def test_pad_holds_boundary_conditions(self):
        p = LaplaceProblem(nx=32, ny=32, left=1.0, right=2.0)
        layout = AlignedDomain(p)
        img = layout.pack()
        f = bits_to_f32(img)
        assert np.all(f[1:-1, PAD_ELEMS - 1] == 1.0)   # innermost left pad
        assert np.all(f[1:-1, PAD_ELEMS + 32] == 2.0)  # innermost right pad
        assert np.all(f[1:-1, :PAD_ELEMS - 1] == 0.0)  # rest of pad empty

    def test_interior_writes_are_256bit_aligned(self):
        """The whole point of Fig. 5: every tile-row write lands aligned."""
        layout = AlignedDomain(LaplaceProblem(nx=128, ny=64))
        for row in range(1, 65):
            for tile_x in range(0, 128, 32):
                assert layout.elem_offset(row, tile_x) % 32 == 0

    def test_stencil_reads_are_misaligned_by_30(self):
        """...while the x-1 halo reads are misaligned (hence Listing 4)."""
        layout = AlignedDomain(LaplaceProblem(nx=128, ny=64))
        off = layout.stencil_row_offset(1, 0)
        assert off % 32 == 30

    def test_row_offsets_monotone(self):
        layout = AlignedDomain(LaplaceProblem(nx=32, ny=8))
        offs = [layout.row_offset(r) for r in range(layout.n_rows)]
        assert offs == sorted(offs)
        assert offs[1] - offs[0] == layout.row_bytes

    def test_bounds_checked(self):
        layout = AlignedDomain(LaplaceProblem(nx=32, ny=8))
        with pytest.raises(IndexError):
            layout.row_offset(10)
        with pytest.raises(IndexError):
            layout.elem_offset(0, 32)

    def test_pack_rejects_wrong_shape(self):
        layout = AlignedDomain(LaplaceProblem(nx=32, ny=8))
        with pytest.raises(ValueError):
            layout.pack(np.zeros((4, 4), dtype=np.uint16))

    def test_render(self):
        text = AlignedDomain(LaplaceProblem(nx=32, ny=8)).render()
        assert "byte 32" in text


@settings(max_examples=30, deadline=None)
@given(nx=st.sampled_from([32, 64, 96, 128]), ny=st.integers(1, 40),
       seed=st.integers(0, 99))
def test_pack_unpack_bijection(nx, ny, seed):
    p = LaplaceProblem(nx=nx, ny=ny)
    layout = AlignedDomain(p)
    rng = np.random.default_rng(seed)
    grid = rng.integers(0, 2 ** 16, (ny + 2, nx + 2), dtype=np.uint16)
    assert np.array_equal(layout.unpack(layout.pack(grid)), grid)
