"""Section-IV kernel tests: bit-exactness, variants, alignment bug demo."""

import numpy as np
import pytest

from repro.arch.device import GrayskullDevice
from repro.core.grid import LaplaceProblem
from repro.core.jacobi_initial import (
    InitialConfig,
    InitialJacobiRunner,
    describe_dataflow,
)
from repro.cpu.jacobi import jacobi_solve_bf16
from repro.dtypes.bf16 import bits_to_f32


def reference_bits(problem, iterations):
    return jacobi_solve_bf16(problem.initial_grid_bf16(), iterations)


class TestBitExactness:
    @pytest.mark.parametrize("cfg_name", ["initial", "write_optimised",
                                          "double_buffered_cfg"])
    def test_variant_matches_bf16_reference(self, device_factory,
                                            small_problem, cfg_name):
        cfg = getattr(InitialConfig, cfg_name)()
        runner = InitialJacobiRunner(device_factory(), small_problem, cfg)
        res = runner.run(4)
        want = reference_bits(small_problem, 4)
        assert np.array_equal(res.grid_bits, want)

    def test_odd_iteration_count(self, device_factory, small_problem):
        runner = InitialJacobiRunner(device_factory(), small_problem)
        res = runner.run(3)
        assert np.array_equal(res.grid_bits, reference_bits(small_problem, 3))

    def test_single_iteration(self, device_factory, small_problem):
        runner = InitialJacobiRunner(device_factory(), small_problem)
        res = runner.run(1)
        assert np.array_equal(res.grid_bits, reference_bits(small_problem, 1))

    def test_multi_batch_domain(self, device_factory):
        """A 64x64 domain has 4 batches; halos cross batch boundaries."""
        problem = LaplaceProblem(nx=64, ny=64, left=1.0, top=0.5)
        runner = InitialJacobiRunner(device_factory(), problem)
        res = runner.run(3)
        assert np.array_equal(res.grid_bits, reference_bits(problem, 3))

    def test_nonsquare_domain(self, device_factory):
        problem = LaplaceProblem(nx=96, ny=32)
        runner = InitialJacobiRunner(device_factory(), problem)
        res = runner.run(2)
        assert np.array_equal(res.grid_bits, reference_bits(problem, 2))

    def test_boundary_values_propagate_inward(self, device_factory):
        problem = LaplaceProblem(nx=32, ny=32, left=1.0)
        runner = InitialJacobiRunner(device_factory(), problem)
        res = runner.run(10)
        vals = bits_to_f32(res.grid_bits)
        # after 10 iterations the left boundary has diffused inward
        assert vals[16, 1] > vals[16, 5] > vals[16, 10] >= 0.0
        assert vals[16, 1] > 0.0


class TestAlignmentBugDemo:
    def test_unaligned_reads_give_wrong_answer(self, device_factory,
                                               small_problem):
        """Without Listing 4 the answer is corrupted — the paper's Section
        IV-B experience, mechanically reproduced."""
        cfg = InitialConfig(aligned_reads=False)
        runner = InitialJacobiRunner(device_factory(), small_problem, cfg)
        res = runner.run(2)
        want = reference_bits(small_problem, 2)
        assert not np.array_equal(res.grid_bits, want)


class TestPerformanceShape:
    def test_variant_ordering(self, device_factory, problem_64):
        """double-buffered > write-opt >= initial in GPt/s (Table I)."""
        rates = {}
        for name, cfg in [
            ("initial", InitialConfig.initial()),
            ("write_opt", InitialConfig.write_optimised()),
            ("double", InitialConfig.double_buffered_cfg()),
        ]:
            runner = InitialJacobiRunner(device_factory(), problem_64, cfg)
            res = runner.run(200, sim_iterations=2, read_back=False)
            rates[name] = res.gpts
        assert rates["double"] > rates["write_opt"] >= rates["initial"]

    def test_extrapolation_scales_time(self, device_factory, small_problem):
        runner = InitialJacobiRunner(device_factory(), small_problem)
        short = runner.run(2, read_back=False)
        runner2 = InitialJacobiRunner(device_factory(), small_problem)
        extrap = runner2.run(1000, sim_iterations=2, read_back=False)
        assert extrap.kernel_time_s == pytest.approx(
            short.kernel_time_s * 500, rel=1e-6)
        assert extrap.grid_bits is None  # no answer without full sim

    def test_transfer_time_recorded(self, device_factory, small_problem):
        res = InitialJacobiRunner(device_factory(), small_problem).run(1)
        assert res.transfer_time_s > 0
        assert res.total_time_s > res.kernel_time_s

    def test_energy_positive(self, device_factory, small_problem):
        res = InitialJacobiRunner(device_factory(), small_problem).run(2)
        assert res.energy_j > 0


class TestValidation:
    def test_ny_must_be_tile_multiple(self, device_factory):
        with pytest.raises(ValueError, match="multiple"):
            InitialJacobiRunner(device_factory(), LaplaceProblem(nx=32, ny=30))

    def test_zero_iterations_rejected(self, device_factory, small_problem):
        runner = InitialJacobiRunner(device_factory(), small_problem)
        with pytest.raises(ValueError):
            runner.run(0)

    def test_describe_dataflow(self):
        text = describe_dataflow()
        assert "dm0" in text and "semaphore" in text and "FPU" in text
