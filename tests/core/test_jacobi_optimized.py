"""Section-VI kernel tests: zero-copy correctness, multi-core, speedup."""

import numpy as np
import pytest

from repro.core.grid import LaplaceProblem
from repro.core.jacobi_initial import InitialJacobiRunner
from repro.core.jacobi_optimized import OptimizedConfig, OptimizedJacobiRunner
from repro.cpu.jacobi import jacobi_solve_bf16
from repro.dtypes.bf16 import bits_to_f32


def reference_bits(problem, iterations):
    return jacobi_solve_bf16(problem.initial_grid_bf16(), iterations)


class TestBitExactness:
    def test_single_core_matches_reference(self, device_factory,
                                           small_problem):
        runner = OptimizedJacobiRunner(device_factory(), small_problem)
        res = runner.run(4)
        assert np.array_equal(res.grid_bits,
                              reference_bits(small_problem, 4))

    def test_odd_iterations(self, device_factory, small_problem):
        runner = OptimizedJacobiRunner(device_factory(), small_problem)
        res = runner.run(5)
        assert np.array_equal(res.grid_bits,
                              reference_bits(small_problem, 5))

    def test_wide_domain_multiple_chunks(self, device_factory):
        """nx > chunk: several chunk columns per core (Fig. 6's two columns)."""
        problem = LaplaceProblem(nx=128, ny=16)
        cfg = OptimizedConfig(chunk=64)
        runner = OptimizedJacobiRunner(device_factory(), problem, cfg)
        res = runner.run(3)
        assert np.array_equal(res.grid_bits, reference_bits(problem, 3))

    def test_single_bank_variant(self, device_factory, small_problem):
        cfg = OptimizedConfig(interleaved=False)
        runner = OptimizedJacobiRunner(device_factory(), small_problem, cfg)
        res = runner.run(3)
        assert np.array_equal(res.grid_bits,
                              reference_bits(small_problem, 3))

    def test_matches_initial_kernel_bit_for_bit(self, device_factory,
                                                small_problem):
        """Both kernel generations compute the identical BF16 answer."""
        a = OptimizedJacobiRunner(device_factory(), small_problem).run(3)
        b = InitialJacobiRunner(device_factory(), small_problem).run(3)
        assert np.array_equal(a.grid_bits, b.grid_bits)

    def test_accumulate_ablation_runs_and_is_close(self, device_factory,
                                                   small_problem):
        """The dst-accumulation ablation computes with different rounding
        (fewer packs), so it is close but not bit-identical."""
        cfg = OptimizedConfig(accumulate_in_dst=True)
        runner = OptimizedJacobiRunner(device_factory(), small_problem, cfg)
        res = runner.run(3)
        want = bits_to_f32(reference_bits(small_problem, 3))
        got = bits_to_f32(res.grid_bits)
        assert np.abs(got - want).max() < 0.05


class TestMultiCore:
    @pytest.mark.parametrize("cy,cx", [(2, 1), (1, 2), (2, 2)])
    def test_multicore_matches_reference(self, device_factory, cy, cx):
        problem = LaplaceProblem(nx=64, ny=16, left=1.0)
        runner = OptimizedJacobiRunner(device_factory(), problem,
                                       cores_y=cy, cores_x=cx)
        res = runner.run(4)
        assert np.array_equal(res.grid_bits, reference_bits(problem, 4))

    def test_four_cores_faster_than_one(self, device_factory):
        problem = LaplaceProblem(nx=64, ny=32)
        t = {}
        for cores in (1, 4):
            cy, cx = (2, 2) if cores == 4 else (1, 1)
            runner = OptimizedJacobiRunner(device_factory(), problem,
                                           cores_y=cy, cores_x=cx)
            res = runner.run(50, sim_iterations=2, read_back=False)
            t[cores] = res.kernel_time_s
        assert t[4] < t[1]


class TestPerformanceShape:
    def test_optimized_much_faster_than_initial(self, device_factory,
                                                problem_64):
        """The headline claim: the Section-VI redesign is >10x faster than
        the Section-IV version (the paper reports 163x vs the very first
        build at 512x512; at 64x64 fixed costs compress the gap)."""
        opt = OptimizedJacobiRunner(device_factory(), problem_64).run(
            100, sim_iterations=2, read_back=False)
        init = InitialJacobiRunner(device_factory(), problem_64).run(
            100, sim_iterations=2, read_back=False)
        assert opt.gpts / init.gpts > 4.0

    def test_no_memcpy_time_on_reader(self, device_factory, small_problem):
        """Zero-copy: the optimised reader spends a small fraction of the
        initial kernel's reader time (which is dominated by the 4-CB
        memcpy extraction)."""
        from repro.arch.tensix import DATA_MOVER_0
        dev_opt = device_factory()
        OptimizedJacobiRunner(dev_opt, small_problem).run(2, read_back=False)
        opt_busy = dev_opt.core(0, 0).busy_time[DATA_MOVER_0]
        dev_init = device_factory()
        InitialJacobiRunner(dev_init, small_problem).run(2, read_back=False)
        init_busy = dev_init.core(0, 0).busy_time[DATA_MOVER_0]
        assert opt_busy < init_busy / 3

    def test_ablation_slower_than_listing2(self, device_factory,
                                           problem_64):
        """The paper: dst accumulation 'actually resulted in lower
        performance'."""
        base = OptimizedJacobiRunner(
            device_factory(), problem_64, OptimizedConfig()).run(
                50, sim_iterations=2, read_back=False)
        abl = OptimizedJacobiRunner(
            device_factory(), problem_64,
            OptimizedConfig(accumulate_in_dst=True)).run(
                50, sim_iterations=2, read_back=False)
        assert abl.gpts < base.gpts


class TestValidation:
    def test_zero_iterations_rejected(self, device_factory, small_problem):
        with pytest.raises(ValueError):
            OptimizedJacobiRunner(device_factory(), small_problem).run(0)

    def test_reader_rows_read_once_per_iteration(self, device_factory,
                                                 small_problem):
        """No replicated reads: per iteration the reader fetches each of
        the ny+2 halo rows exactly once."""
        dev = device_factory()
        runner = OptimizedJacobiRunner(dev, small_problem)
        runner.run(1, read_back=False)
        reads = dev.noc0.stats.read_requests
        assert reads == small_problem.ny + 2
