"""SRAM-resident solver tests (the paper's future-work architecture)."""

import numpy as np
import pytest

from repro.arch.sram import SramExhausted
from repro.core.grid import LaplaceProblem
from repro.core.jacobi_optimized import OptimizedJacobiRunner
from repro.core.jacobi_sram import SramJacobiRunner
from repro.cpu.jacobi import jacobi_solve_bf16


class TestCorrectness:
    @pytest.mark.parametrize("cores_y", [1, 2, 3, 4])
    def test_bit_exact(self, device_factory, cores_y):
        p = LaplaceProblem(nx=32, ny=24, left=1.0, top=0.5)
        res = SramJacobiRunner(device_factory(), p, cores_y=cores_y).run(4)
        want = jacobi_solve_bf16(p.initial_grid_bf16(), 4)
        assert np.array_equal(res.grid_bits, want)

    def test_single_iteration(self, device_factory):
        p = LaplaceProblem(nx=32, ny=8)
        res = SramJacobiRunner(device_factory(), p, cores_y=2).run(1)
        assert np.array_equal(res.grid_bits,
                              jacobi_solve_bf16(p.initial_grid_bf16(), 1))

    def test_matches_streaming_kernel(self, device_factory):
        """Both architectures compute the identical BF16 field."""
        p = LaplaceProblem(nx=32, ny=16, left=1.0)
        a = SramJacobiRunner(device_factory(), p, cores_y=2).run(5)
        b = OptimizedJacobiRunner(device_factory(), p,
                                  cores_y=2, cores_x=1).run(5)
        assert np.array_equal(a.grid_bits, b.grid_bits)

    def test_halo_information_crosses_cores(self, device_factory):
        """The top boundary's influence must cross the core cut — it can
        only do so through the NoC halo exchange."""
        p = LaplaceProblem(nx=32, ny=16, top=1.0, initial=0.0)
        iters = 12  # enough for influence to pass row 8 (the cut)
        res = SramJacobiRunner(device_factory(), p, cores_y=2).run(iters)
        from repro.dtypes.bf16 import bits_to_f32
        vals = bits_to_f32(res.grid_bits)
        assert vals[12, 16] > 0  # below the cut, influenced from above
        assert np.array_equal(
            res.grid_bits, jacobi_solve_bf16(p.initial_grid_bf16(), iters))


class TestCapacityAndValidation:
    def test_oversized_domain_rejected(self, device_factory):
        with pytest.raises(SramExhausted, match="slabs"):
            SramJacobiRunner(device_factory(),
                             LaplaceProblem(nx=1024, ny=512), cores_y=1)

    def test_more_cores_unlock_bigger_domains(self, device_factory):
        p = LaplaceProblem(nx=1024, ny=512)
        SramJacobiRunner(device_factory(), p, cores_y=8)  # fits

    def test_ragged_nx_rejected(self, device_factory):
        with pytest.raises(ValueError, match="multiple"):
            SramJacobiRunner(device_factory(),
                             LaplaceProblem(nx=1056, ny=8), cores_y=1)

    def test_bad_core_counts(self, device_factory):
        p = LaplaceProblem(nx=32, ny=4)
        with pytest.raises(ValueError):
            SramJacobiRunner(device_factory(), p, cores_y=0)
        with pytest.raises(ValueError):
            SramJacobiRunner(device_factory(), p, cores_y=8)

    def test_zero_iterations_rejected(self, device_factory):
        p = LaplaceProblem(nx=32, ny=8)
        with pytest.raises(ValueError):
            SramJacobiRunner(device_factory(), p, cores_y=1).run(0)


class TestPerformance:
    def test_faster_than_dram_streaming(self, device_factory):
        """The paper's hypothesis: SRAM residence improves throughput."""
        p = LaplaceProblem(nx=256, ny=64)
        sram = SramJacobiRunner(device_factory(), p, cores_y=4).run(
            500, sim_iterations=4, read_back=False)
        stream = OptimizedJacobiRunner(device_factory(), p,
                                       cores_y=4, cores_x=1).run(
            500, sim_iterations=4, read_back=False)
        assert sram.kernel_time_s < stream.kernel_time_s

    def test_scales_with_cores(self, device_factory):
        p = LaplaceProblem(nx=256, ny=64)
        t = {}
        for cy in (1, 4):
            res = SramJacobiRunner(device_factory(), p, cores_y=cy).run(
                500, sim_iterations=4, read_back=False)
            t[cy] = res.kernel_time_s
        assert t[4] < t[1] / 2

    def test_dram_quiet_during_iterations(self, device_factory):
        """After the load, iterations generate no DRAM traffic."""
        dev = device_factory()
        p = LaplaceProblem(nx=32, ny=16)
        SramJacobiRunner(dev, p, cores_y=2).run(3, read_back=False)
        reads = dev.noc0.stats.read_requests
        # load = (ny + 2) rows per core boundary split = 16+2+... ; with
        # 2 cores: (8+2) + (8+2) = 20 row reads total, nothing else
        assert reads == 20
