"""Functional multi-core / multi-card execution tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grid import LaplaceProblem
from repro.core.multicore import (
    run_multicard_functional,
    run_multicore_functional,
)
from repro.cpu.jacobi import jacobi_solve_bf16
from repro.dtypes.bf16 import bits_to_f32


class TestMulticore:
    @pytest.mark.parametrize("cy,cx", [(1, 1), (2, 2), (3, 1), (1, 4), (4, 3)])
    def test_equals_global_sweep(self, cy, cx):
        """DRAM halo exchange with a barrier per iteration is bit-identical
        to the global sweep."""
        p = LaplaceProblem(nx=24, ny=24, left=1.0, top=-0.5)
        bits = p.initial_grid_bf16()
        got = run_multicore_functional(bits, 5, cy, cx)
        want = jacobi_solve_bf16(bits, 5)
        assert np.array_equal(got, want)

    def test_zero_iterations(self):
        p = LaplaceProblem(nx=8, ny=8)
        bits = p.initial_grid_bf16()
        assert np.array_equal(run_multicore_functional(bits, 0, 2, 2), bits)


class TestMulticard:
    def test_single_card_equals_global(self):
        p = LaplaceProblem(nx=16, ny=16, left=1.0)
        bits = p.initial_grid_bf16()
        got = run_multicard_functional(bits, 6, 1)
        assert np.array_equal(got, jacobi_solve_bf16(bits, 6))

    def test_multicard_deviates_from_truth(self):
        """The paper's caveat, reproduced: without inter-card halos the
        answer is wrong once boundary information should have crossed the
        cut."""
        p = LaplaceProblem(nx=16, ny=16, top=1.0)
        bits = p.initial_grid_bf16()
        iterations = 12  # enough for the top boundary to reach the cut
        got = run_multicard_functional(bits, iterations, 2)
        want = jacobi_solve_bf16(bits, iterations)
        assert not np.array_equal(got, want)
        # ...and the deviation is concentrated near the card cut (row 8):
        diff = np.abs(bits_to_f32(got) - bits_to_f32(want))
        cut_err = diff[7:11, 1:-1].max()
        far_err = diff[1:3, 1:-1].max()
        assert cut_err > far_err

    def test_multicard_correct_before_information_reaches_cut(self):
        """For few iterations the stale halos have not been consulted with
        wrong values yet: each card's block is still exact."""
        p = LaplaceProblem(nx=16, ny=16, top=1.0)
        bits = p.initial_grid_bf16()
        got = run_multicard_functional(bits, 2, 2)
        want = jacobi_solve_bf16(bits, 2)
        # rows far from the cut are exact
        assert np.array_equal(got[1:4], want[1:4])

    def test_invalid_cards(self):
        p = LaplaceProblem(nx=8, ny=8)
        with pytest.raises(ValueError):
            run_multicard_functional(p.initial_grid_bf16(), 1, 0)


@settings(max_examples=20, deadline=None)
@given(cy=st.integers(1, 4), cx=st.integers(1, 4), iters=st.integers(0, 6))
def test_multicore_decomposition_invariant(cy, cx, iters):
    """Property: any core grid gives the same bits as the global sweep."""
    p = LaplaceProblem(nx=16, ny=16, left=2.0, bottom=-1.0, initial=0.25)
    bits = p.initial_grid_bf16()
    got = run_multicore_functional(bits, iters, cy, cx)
    assert np.array_equal(got, jacobi_solve_bf16(bits, iters))
