"""Defect-correction tests: BF16 device sweeps reach FP32 accuracy."""

import numpy as np
import pytest

from repro.core.grid import LaplaceProblem
from repro.core.refinement import (
    RefinementResult,
    residual,
    solve_defect_correction,
)
from repro.core.stencil import StencilRunner, StencilSpec
from repro.cpu.jacobi import jacobi_solve_bf16, solve_direct
from repro.dtypes.bf16 import bits_to_f32


class TestResidual:
    def test_zero_at_exact_solution(self):
        p = LaplaceProblem(nx=12, ny=12, left=1.0)
        exact = solve_direct(p.initial_grid_f32()).astype(np.float32)
        assert np.abs(residual(exact)).max() < 1e-5

    def test_nonzero_at_initial_guess(self):
        p = LaplaceProblem(nx=12, ny=12, left=1.0)
        assert np.abs(residual(p.initial_grid_f32())).max() > 0.1


class TestDefectCorrection:
    def test_beats_plain_bf16_by_orders_of_magnitude(self):
        """The headline: BF16 stalls near 0.17; refinement reaches ~1e-5."""
        p = LaplaceProblem(nx=32, ny=32, left=1.0)
        exact = solve_direct(p.initial_grid_f32())
        plain = bits_to_f32(jacobi_solve_bf16(p.initial_grid_bf16(), 2000))
        plain_err = np.abs(plain[1:-1, 1:-1] - exact[1:-1, 1:-1]).max()
        res = solve_defect_correction(p, outer_cycles=8,
                                      inner_iterations=800)
        ref_err = np.abs(res.grid_f32[1:-1, 1:-1]
                         - exact[1:-1, 1:-1]).max()
        assert plain_err > 0.1
        assert ref_err < 1e-4
        assert ref_err < plain_err / 1000

    def test_residual_history_monotone(self):
        p = LaplaceProblem(nx=16, ny=16, left=1.0)
        res = solve_defect_correction(p, outer_cycles=5,
                                      inner_iterations=400)
        assert all(b < a for a, b in zip(res.history, res.history[1:]))

    def test_tolerance_stops_early(self):
        p = LaplaceProblem(nx=16, ny=16, left=1.0)
        res = solve_defect_correction(p, outer_cycles=20,
                                      inner_iterations=400, tol=1e-3)
        assert res.outer_cycles < 20
        assert res.final_residual <= 1.1e-3

    def test_boundaries_preserved(self):
        p = LaplaceProblem(nx=16, ny=16, left=2.0, right=-1.0)
        res = solve_defect_correction(p, outer_cycles=3,
                                      inner_iterations=200)
        assert np.all(res.grid_f32[1:-1, 0] == 2.0)
        assert np.all(res.grid_f32[1:-1, -1] == -1.0)

    def test_validation(self):
        p = LaplaceProblem(nx=16, ny=16)
        with pytest.raises(ValueError):
            solve_defect_correction(p, outer_cycles=0)
        with pytest.raises(ValueError):
            solve_defect_correction(p, inner_iterations=0)

    def test_device_inner_solve_matches_functional(self, device_factory):
        """The inner correction solve through the full DES equals the
        functional sweep bit-for-bit — so the refinement result is what
        the real device pipeline would produce."""
        p = LaplaceProblem(nx=32, ny=16, left=1.0)
        corr = LaplaceProblem(nx=32, ny=16, left=0, right=0, top=0,
                              bottom=0, initial=0)
        spec = StencilSpec.jacobi()

        def device_sweep(rhs_bits, iterations):
            runner = StencilRunner(device_factory(), corr, spec)
            out = runner.run(iterations, rhs=rhs_bits)
            return out.grid_bits[1:-1, 1:-1]

        a = solve_defect_correction(p, outer_cycles=2, inner_iterations=8,
                                    device_sweep=device_sweep)
        b = solve_defect_correction(p, outer_cycles=2, inner_iterations=8)
        assert np.array_equal(a.grid_f32, b.grid_f32)
