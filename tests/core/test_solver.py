"""JacobiSolver facade tests: routing, results, validation."""

import numpy as np
import pytest

from repro.core.grid import LaplaceProblem
from repro.core.solver import JacobiSolver
from repro.cpu.jacobi import jacobi_solve_bf16, jacobi_solve_f32
from repro.dtypes.bf16 import bits_to_f32


class TestRouting:
    def test_auto_small_uses_des(self, small_problem):
        solver = JacobiSolver(backend="auto", cores=(1, 1))
        res = solver.solve(small_problem, 2)
        assert res.backend == "e150"

    def test_auto_large_uses_model(self, small_problem):
        solver = JacobiSolver(backend="auto", cores=(4, 8))
        res = solver.solve(small_problem, 2)
        assert res.backend == "e150-model"

    def test_auto_multicard_uses_model(self):
        solver = JacobiSolver(backend="auto", cores=(2, 1), n_cards=2)
        res = solver.solve(LaplaceProblem(nx=32, ny=8), 2)
        assert res.backend == "e150-model"

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            JacobiSolver(backend="tpu")

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            JacobiSolver(variant="fastest")

    def test_multicore_requires_optimized(self):
        with pytest.raises(ValueError):
            JacobiSolver(variant="initial", cores=(2, 2))

    def test_multicard_requires_optimized(self):
        with pytest.raises(ValueError):
            JacobiSolver(variant="initial", n_cards=2)


class TestAnswers:
    def test_cpu_answer(self, small_problem):
        res = JacobiSolver(backend="cpu").solve(small_problem, 10)
        want = jacobi_solve_f32(small_problem.initial_grid_f32(), 10)
        assert np.array_equal(res.grid_f32, want)

    def test_des_answer_bit_exact(self, small_problem):
        res = JacobiSolver(backend="e150").solve(small_problem, 3)
        want = bits_to_f32(jacobi_solve_bf16(
            small_problem.initial_grid_bf16(), 3))
        assert np.array_equal(res.grid_f32, want)

    def test_model_answer_bit_exact(self, small_problem):
        res = JacobiSolver(backend="e150-model",
                           cores=(2, 2)).solve(small_problem, 3)
        want = bits_to_f32(jacobi_solve_bf16(
            small_problem.initial_grid_bf16(), 3))
        assert np.array_equal(res.grid_f32, want)

    def test_model_can_skip_answer(self, small_problem):
        res = JacobiSolver(backend="e150-model", cores=(2, 2)).solve(
            small_problem, 3, compute_answer=False)
        assert res.grid_f32 is None
        with pytest.raises(ValueError):
            _ = res.interior

    def test_interior_shape(self, small_problem):
        res = JacobiSolver(backend="cpu").solve(small_problem, 1)
        assert res.interior.shape == (32, 32)


class TestMetrics:
    def test_all_backends_report_performance(self, small_problem):
        for backend, kw in [("cpu", {}), ("e150", {}),
                            ("e150-model", {"cores": (2, 2)})]:
            res = JacobiSolver(backend=backend, **kw).solve(small_problem, 2)
            assert res.time_s > 0
            assert res.gpts > 0
            assert res.energy_j > 0

    def test_des_extrapolation(self, small_problem):
        res = JacobiSolver(backend="e150").solve(
            small_problem, 100, sim_iterations=2)
        assert res.grid_f32 is None  # partial simulation: no answer
        assert res.time_s > 0

    def test_shared_device(self, small_problem, device_factory):
        dev = device_factory()
        JacobiSolver(backend="e150").solve(small_problem, 1, device=dev)
        assert dev.sim.now > 0


class TestSramVariant:
    def test_routes_to_des(self, small_problem):
        import numpy as np
        from repro.cpu.jacobi import jacobi_solve_bf16
        from repro.dtypes.bf16 import bits_to_f32
        solver = JacobiSolver(backend="auto", variant="sram", cores=(2, 1))
        res = solver.solve(small_problem, 4)
        assert res.backend == "e150"
        want = bits_to_f32(jacobi_solve_bf16(
            small_problem.initial_grid_bf16(), 4))
        assert np.array_equal(res.grid_f32, want)

    def test_rejects_x_decomposition(self):
        with pytest.raises(ValueError, match="Y"):
            JacobiSolver(variant="sram", cores=(2, 2))

    def test_rejects_model_backend(self, small_problem):
        solver = JacobiSolver(backend="e150-model", variant="sram",
                              cores=(2, 1))
        with pytest.raises(ValueError, match="analytic"):
            solver.solve(small_problem, 2)
