"""Generic-stencil extension tests (the paper's advection future work)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.device import GrayskullDevice
from repro.core.grid import LaplaceProblem
from repro.core.stencil import (
    StencilRunner,
    StencilSpec,
    stencil_solve_bf16,
    stencil_step_bf16,
)
from repro.dtypes.bf16 import bits_to_f32


class TestStencilSpec:
    def test_jacobi_spec(self):
        s = StencilSpec.jacobi()
        assert s.center == 0.0
        assert s.west == s.east == s.north == s.south == 0.25
        assert len(s.active_terms()) == 4
        assert s.max_principle_holds()

    def test_diffusion_spec(self):
        s = StencilSpec.diffusion(0.25)
        assert s.center == 0.0
        assert s.max_principle_holds()
        with pytest.raises(ValueError):
            StencilSpec.diffusion(0.3)

    def test_advection_spec(self):
        s = StencilSpec.advection_upwind(0.4, 0.25)
        assert s.east == s.south == 0.0
        assert len(s.active_terms()) == 3
        assert s.max_principle_holds()
        with pytest.raises(ValueError):
            StencilSpec.advection_upwind(0.8, 0.5)
        with pytest.raises(ValueError):
            StencilSpec.advection_upwind(-0.1, 0.0)

    def test_coefficients_bf16_rounded(self):
        s = StencilSpec(center=0.1, west=0, east=0, north=0, south=0)
        # 0.1 is not BF16-representable; the spec stores the rounded value
        assert s.center != 0.1
        assert abs(s.center - 0.1) < 0.1 * 2 ** -8

    def test_empty_spec_rejected_by_runner(self, device):
        spec = StencilSpec(0, 0, 0, 0, 0)
        with pytest.raises(ValueError, match="no non-zero"):
            StencilRunner(device, LaplaceProblem(nx=32, ny=8), spec)


class TestReference:
    def test_jacobi_spec_close_to_listing2_kernel(self):
        """Same maths, different rounding chain: close, not bit-equal."""
        from repro.cpu.jacobi import jacobi_solve_bf16
        p = LaplaceProblem(nx=32, ny=16, left=1.0)
        a = bits_to_f32(stencil_solve_bf16(
            p.initial_grid_bf16(), StencilSpec.jacobi(), 5))
        b = bits_to_f32(jacobi_solve_bf16(p.initial_grid_bf16(), 5))
        assert np.abs(a - b).max() < 0.01

    def test_identity_spec(self):
        p = LaplaceProblem(nx=32, ny=8, left=1.0, initial=0.5)
        spec = StencilSpec(center=1.0, west=0, east=0, north=0, south=0)
        out = stencil_step_bf16(p.initial_grid_bf16(), spec)
        assert np.array_equal(out, p.initial_grid_bf16())

    def test_advection_transports_leftward_boundary(self):
        """Upwind advection with +x flow carries the left boundary right."""
        p = LaplaceProblem(nx=32, ny=8, left=1.0, initial=0.0)
        spec = StencilSpec.advection_upwind(0.5, 0.0)
        bits = stencil_solve_bf16(p.initial_grid_bf16(), spec, 20)
        vals = bits_to_f32(bits)
        row = vals[4, 1:-1]
        assert row[0] > 0.9          # near the inflow: saturated
        assert row[5] > row[20]      # monotone front
        assert row[-1] < 0.05        # front has not reached the far side

    def test_boundaries_untouched(self):
        p = LaplaceProblem(nx=32, ny=8, left=1.0)
        spec = StencilSpec.diffusion(0.2)
        out = stencil_solve_bf16(p.initial_grid_bf16(), spec, 3)
        assert np.array_equal(out[:, 0], p.initial_grid_bf16()[:, 0])


class TestDeviceExecution:
    @pytest.mark.parametrize("spec_name,args", [
        ("jacobi", ()), ("diffusion", (0.2,)),
        ("advection_upwind", (0.3, 0.2)),
    ])
    def test_device_matches_reference(self, device_factory, spec_name, args):
        spec = getattr(StencilSpec, spec_name)(*args)
        p = LaplaceProblem(nx=32, ny=16, left=1.0)
        res = StencilRunner(device_factory(), p, spec).run(4)
        want = stencil_solve_bf16(p.initial_grid_bf16(), spec, 4)
        assert np.array_equal(res.grid_bits, want)

    def test_multicore(self, device_factory):
        spec = StencilSpec.advection_upwind(0.4, 0.1)
        p = LaplaceProblem(nx=64, ny=16, left=1.0)
        res = StencilRunner(device_factory(), p, spec,
                            cores_y=2, cores_x=2).run(3)
        want = stencil_solve_bf16(p.initial_grid_bf16(), spec, 3)
        assert np.array_equal(res.grid_bits, want)

    def test_multi_chunk_columns(self, device_factory):
        spec = StencilSpec.diffusion(0.25)
        p = LaplaceProblem(nx=64, ny=8)
        res = StencilRunner(device_factory(), p, spec, chunk=32).run(2)
        want = stencil_solve_bf16(p.initial_grid_bf16(), spec, 2)
        assert np.array_equal(res.grid_bits, want)

    def test_fewer_terms_is_faster(self, device_factory):
        """Advection (3 terms) beats Jacobi (4 terms) per point."""
        p = LaplaceProblem(nx=64, ny=32)
        t3 = StencilRunner(device_factory(), p,
                           StencilSpec.advection_upwind(0.3, 0.2)).run(
            50, sim_iterations=2, read_back=False)
        t5 = StencilRunner(device_factory(), p,
                           StencilSpec.diffusion(0.2)).run(
            50, sim_iterations=2, read_back=False)
        assert t3.kernel_time_s < t5.kernel_time_s


@settings(max_examples=25, deadline=None)
@given(cu=st.floats(0.0, 0.6), cv=st.floats(0.0, 0.4),
       iters=st.integers(0, 15))
def test_advection_max_principle(cu, cv, iters):
    """Upwind advection is monotone: values stay within initial extrema."""
    p = LaplaceProblem(nx=16, ny=8, left=1.0, initial=0.25)
    spec = StencilSpec.advection_upwind(cu, cv)
    vals = bits_to_f32(stencil_solve_bf16(p.initial_grid_bf16(), spec, iters))
    slack = 2 ** -7
    assert vals.min() >= 0.0 - slack
    assert vals.max() <= 1.0 + slack


@settings(max_examples=20, deadline=None)
@given(alpha=st.floats(0.01, 0.25), iters=st.integers(0, 10))
def test_diffusion_max_principle(alpha, iters):
    p = LaplaceProblem(nx=16, ny=8, left=1.0, bottom=-0.5, initial=0.0)
    spec = StencilSpec.diffusion(alpha)
    vals = bits_to_f32(stencil_solve_bf16(p.initial_grid_bf16(), spec, iters))
    slack = 2 ** -6
    assert vals.min() >= -0.5 - slack
    assert vals.max() <= 1.0 + slack


class TestRhsField:
    def test_reference_rhs_addition(self, rng):
        from repro.dtypes.bf16 import f32_to_bits
        p = LaplaceProblem(nx=16, ny=8, initial=0.0, left=0.0)
        rhs = f32_to_bits(np.full((8, 16), 0.5, dtype=np.float32))
        spec = StencilSpec(center=0.0, west=0, east=0, north=0, south=0.25)
        out = stencil_step_bf16(p.initial_grid_bf16(), spec, rhs_bits=rhs)
        # all-zero field: out = 0.25*0 + rhs = 0.5 everywhere
        assert np.all(bits_to_f32(out)[1:-1, 1:-1] == 0.5)

    def test_rhs_shape_checked(self):
        p = LaplaceProblem(nx=16, ny=8)
        with pytest.raises(ValueError, match="interior shape"):
            stencil_step_bf16(p.initial_grid_bf16(), StencilSpec.jacobi(),
                              rhs_bits=np.zeros((4, 4), dtype=np.uint16))

    def test_device_rhs_bit_exact(self, device_factory, rng):
        from repro.dtypes.bf16 import f32_to_bits
        p = LaplaceProblem(nx=32, ny=16, left=1.0)
        rhs = f32_to_bits(rng.normal(scale=0.1,
                                     size=(16, 32)).astype(np.float32))
        spec = StencilSpec.jacobi()
        res = StencilRunner(device_factory(), p, spec).run(4, rhs=rhs)
        want = stencil_solve_bf16(p.initial_grid_bf16(), spec, 4,
                                  rhs_bits=rhs)
        assert np.array_equal(res.grid_bits, want)

    def test_device_rhs_multicore_multicolumn(self, device_factory, rng):
        from repro.dtypes.bf16 import f32_to_bits
        p = LaplaceProblem(nx=64, ny=16)
        rhs = f32_to_bits(rng.normal(scale=0.1,
                                     size=(16, 64)).astype(np.float32))
        spec = StencilSpec.diffusion(0.2)
        res = StencilRunner(device_factory(), p, spec, cores_y=2,
                            chunk=32).run(3, rhs=rhs)
        want = stencil_solve_bf16(p.initial_grid_bf16(), spec, 3,
                                  rhs_bits=rhs)
        assert np.array_equal(res.grid_bits, want)

    def test_runner_rejects_bad_rhs_shape(self, device_factory):
        p = LaplaceProblem(nx=32, ny=16)
        with pytest.raises(ValueError, match="rhs must be"):
            StencilRunner(device_factory(), p, StencilSpec.jacobi()).run(
                2, rhs=np.zeros((4, 4), dtype=np.uint16))

    def test_custom_initial_grid(self, device_factory):
        from repro.dtypes.bf16 import f32_to_bits
        p = LaplaceProblem(nx=32, ny=16, initial=0.0)
        grid = p.initial_grid_bf16()
        grid[5, 10] = f32_to_bits(np.float32(3.0))
        spec = StencilSpec.diffusion(0.25)
        res = StencilRunner(device_factory(), p, spec).run(
            2, initial_grid=grid)
        want = stencil_solve_bf16(grid, spec, 2)
        assert np.array_equal(res.grid_bits, want)
