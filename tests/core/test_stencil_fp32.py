"""FP32 device execution — the Wormhole-precision mode, functionally.

The paper's future work wants Wormhole "with support for FP32 by the FPU
[to] enable increased precision".  The stencil framework runs that mode
today: 4-byte elements, 512-element FPU tiles, lossless packing.
"""

import numpy as np
import pytest

from repro.core.grid import LaplaceProblem
from repro.core.stencil import (
    StencilRunner,
    StencilSpec,
    stencil_solve_bf16,
    stencil_solve_fp32,
)
from repro.cpu.jacobi import solve_direct
from repro.dtypes.bf16 import bits_to_f32


def as_f32(bits_u32: np.ndarray) -> np.ndarray:
    return bits_u32.view(np.float32)


class TestFp32BitExactness:
    @pytest.mark.parametrize("spec_name,args", [
        ("jacobi", ()), ("diffusion", (0.2,)),
        ("advection_upwind", (0.4, 0.1)),
    ])
    def test_device_matches_fp32_reference(self, device_factory,
                                           spec_name, args):
        spec = getattr(StencilSpec, spec_name)(*args)
        p = LaplaceProblem(nx=32, ny=16, left=1.0)
        res = StencilRunner(device_factory(), p, spec, dtype="fp32").run(4)
        want = stencil_solve_fp32(p.initial_grid_f32(), spec, 4)
        assert np.array_equal(as_f32(res.grid_bits), want)

    def test_multicore_fp32(self, device_factory):
        p = LaplaceProblem(nx=64, ny=16, left=1.0)
        spec = StencilSpec.jacobi()
        res = StencilRunner(device_factory(), p, spec, dtype="fp32",
                            cores_y=2, cores_x=2).run(3)
        want = stencil_solve_fp32(p.initial_grid_f32(), spec, 3)
        assert np.array_equal(as_f32(res.grid_bits), want)

    def test_fp32_rhs(self, device_factory, rng):
        p = LaplaceProblem(nx=32, ny=16)
        rhs = rng.normal(scale=0.1, size=(16, 32)).astype(np.float32)
        spec = StencilSpec.jacobi()
        res = StencilRunner(device_factory(), p, spec,
                            dtype="fp32").run(3, rhs=rhs)
        want = stencil_solve_fp32(p.initial_grid_f32(), spec, 3, rhs=rhs)
        assert np.array_equal(as_f32(res.grid_bits), want)

    def test_fp32_chunks_are_512_elements(self, device_factory):
        """A 512-wide FP32 row is exactly one FPU tile; 1024 needs two."""
        runner = StencilRunner(device_factory(), LaplaceProblem(nx=64, ny=8),
                               StencilSpec.jacobi(), dtype="fp32")
        assert runner.tile_elems == 512
        assert runner.chunk == 512

    def test_invalid_dtype(self, device_factory):
        with pytest.raises(ValueError, match="dtype"):
            StencilRunner(device_factory(), LaplaceProblem(nx=32, ny=8),
                          StencilSpec.jacobi(), dtype="fp64")


class TestPrecisionStory:
    def test_fp32_breaks_the_bf16_stall(self):
        """The punchline of the future-work mode: on the problem where
        BF16 Jacobi plateaus at ~0.17 error, FP32 keeps converging."""
        p = LaplaceProblem(nx=32, ny=32, left=1.0)
        exact = solve_direct(p.initial_grid_f32())
        spec = StencilSpec.jacobi()
        bf16 = bits_to_f32(stencil_solve_bf16(p.initial_grid_bf16(),
                                              spec, 2000))
        fp32 = stencil_solve_fp32(p.initial_grid_f32(), spec, 2000)
        bf16_err = np.abs(bf16[1:-1, 1:-1] - exact[1:-1, 1:-1]).max()
        fp32_err = np.abs(fp32[1:-1, 1:-1] - exact[1:-1, 1:-1]).max()
        assert bf16_err > 0.1
        assert fp32_err < 0.001
        assert fp32_err < bf16_err / 100

    def test_fp32_costs_about_double_per_point(self, device_factory):
        """Same FPU width, half the elements per tile, double the bytes:
        the throughput cost of precision the Wormhole model projects.

        (The domain must be at least one BF16 tile wide — at 512 elements
        both precisions take a single FPU pass per row and the gap
        vanishes, which is itself a useful sizing insight.)"""
        p = LaplaceProblem(nx=1024, ny=32)
        spec = StencilSpec.jacobi()
        bf16 = StencilRunner(device_factory(), p, spec, dtype="bf16").run(
            50, sim_iterations=2, read_back=False)
        fp32 = StencilRunner(device_factory(), p, spec, dtype="fp32").run(
            50, sim_iterations=2, read_back=False)
        ratio = fp32.kernel_time_s / bf16.kernel_time_s
        assert 1.5 < ratio < 3.0

    def test_fp32_matches_plain_numpy_eventually(self):
        """FP32 device semantics equal a plain float32 Jacobi sweep (same
        association order), so they inherit all its numerical behaviour."""
        from repro.cpu.jacobi import jacobi_solve_f32
        p = LaplaceProblem(nx=32, ny=16, left=1.0)
        ours = stencil_solve_fp32(p.initial_grid_f32(),
                                  StencilSpec.jacobi(), 50)
        plain = jacobi_solve_f32(p.initial_grid_f32(), 50)
        # different association (mul-chain vs add-chain): close, not equal
        assert np.abs(ours - plain).max() < 1e-5
