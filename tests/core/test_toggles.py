"""Table-II toggle runner tests."""

import pytest

from repro.core.grid import LaplaceProblem
from repro.core.toggles import (
    PAPER_TOGGLE_ROWS,
    ToggleRow,
    run_component_toggles,
)


@pytest.fixture(scope="module")
def toggle_rows(device_factory_module):
    problem = LaplaceProblem(nx=64, ny=64)
    return run_component_toggles(problem, 200, sim_iterations=2,
                                 device_factory=device_factory_module)


@pytest.fixture(scope="module")
def device_factory_module():
    from repro.arch.device import GrayskullDevice

    def make():
        return GrayskullDevice(dram_bank_capacity=1 << 20)
    return make


def _rate(rows, key):
    for r in rows:
        if (r.read, r.memcpy, r.compute, r.write) == key:
            return r.gpts
    raise KeyError(key)


class TestToggles:
    def test_all_paper_rows_present(self, toggle_rows):
        keys = [(r.read, r.memcpy, r.compute, r.write) for r in toggle_rows]
        assert keys == PAPER_TOGGLE_ROWS

    def test_paper_component_ordering(self, toggle_rows):
        """Table II's ordering: skeleton > compute > write > read > memcpy
        > read+memcpy."""
        nothing = _rate(toggle_rows, (False, False, False, False))
        compute = _rate(toggle_rows, (False, False, True, False))
        write = _rate(toggle_rows, (False, False, False, True))
        read = _rate(toggle_rows, (True, False, False, False))
        memcpy = _rate(toggle_rows, (False, True, False, False))
        both = _rate(toggle_rows, (True, True, False, False))
        assert nothing > compute > write > read > memcpy
        assert memcpy >= both

    def test_memcpy_is_the_bottleneck(self, toggle_rows):
        """The paper's central Section-IV finding."""
        rates = {(r.read, r.memcpy, r.compute, r.write): r.gpts
                 for r in toggle_rows}
        memcpy = rates[(False, True, False, False)]
        others = [v for k, v in rates.items()
                  if k not in ((False, True, False, False),
                               (True, True, False, False))]
        assert all(memcpy < v for v in others)

    def test_labels(self, toggle_rows):
        assert toggle_rows[0].label() == \
            "read=N memcpy=N compute=N write=N"

    def test_custom_rows(self, device_factory_module):
        rows = run_component_toggles(
            LaplaceProblem(nx=32, ny=32), 10, sim_iterations=2,
            rows=[(True, True, True, True)],
            device_factory=device_factory_module)
        assert len(rows) == 1
        assert rows[0].read and rows[0].write
