"""Reference-solver tests: correctness, convergence, invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grid import LaplaceProblem
from repro.cpu.jacobi import (
    jacobi_solve_bf16,
    jacobi_solve_f32,
    jacobi_step_bf16,
    jacobi_step_f32,
    residual_f32,
    solve_direct,
)
from repro.dtypes.bf16 import bits_to_f32, f32_to_bits


class TestF32Step:
    def test_single_point(self):
        u = np.zeros((3, 3), dtype=np.float32)
        u[1, 0], u[1, 2], u[0, 1], u[2, 1] = 1.0, 2.0, 3.0, 4.0
        out = jacobi_step_f32(u)
        assert out[1, 1] == pytest.approx(2.5)

    def test_boundaries_untouched(self, problem_64):
        u = problem_64.initial_grid_f32()
        out = jacobi_solve_f32(u, 5)
        assert np.array_equal(out[:, 0], u[:, 0])
        assert np.array_equal(out[:, -1], u[:, -1])
        assert np.array_equal(out[0, :], u[0, :])
        assert np.array_equal(out[-1, :], u[-1, :])

    def test_zero_iterations_identity(self, problem_64):
        u = problem_64.initial_grid_f32()
        assert np.array_equal(jacobi_solve_f32(u, 0), u)

    def test_negative_iterations_rejected(self, problem_64):
        with pytest.raises(ValueError):
            jacobi_solve_f32(problem_64.initial_grid_f32(), -1)

    def test_tiny_grid_rejected(self):
        with pytest.raises(ValueError):
            jacobi_step_f32(np.zeros((2, 2), dtype=np.float32))

    def test_matches_scalar_listing1(self, rng):
        """The vectorised sweep equals the paper's Listing-1 scalar loop."""
        u = rng.normal(size=(10, 12)).astype(np.float32)
        unew = u.copy()
        for j in range(1, 9):
            for i in range(1, 11):
                # same association order as the vectorised sweep
                # (float addition is not associative)
                s = ((u[j, i - 1] + u[j, i + 1]) + u[j - 1, i]) + u[j + 1, i]
                unew[j, i] = np.float32(0.25) * s
        assert np.array_equal(jacobi_step_f32(u), unew)

    def test_converges_to_direct_solution(self):
        problem = LaplaceProblem(nx=16, ny=16, left=1.0)
        u = problem.initial_grid_f32()
        exact = solve_direct(u)
        u = jacobi_solve_f32(u, 3000)
        assert np.abs(u[1:-1, 1:-1]
                      - exact[1:-1, 1:-1].astype(np.float32)).max() < 1e-4

    def test_residual_decreases(self, problem_64):
        u = problem_64.initial_grid_f32()
        r0 = residual_f32(jacobi_solve_f32(u, 10))
        r1 = residual_f32(jacobi_solve_f32(u, 200))
        assert r1 < r0


class TestBF16Step:
    def test_rounding_points_match_listing2(self):
        """One cell, hand-computed through the four pack roundings."""
        from repro.dtypes.bf16 import bf16_add, bf16_mul
        u = np.zeros((3, 3), dtype=np.float32)
        u[1, 0], u[1, 2], u[0, 1], u[2, 1] = 1.01, 2.02, 3.03, 4.04
        bits = f32_to_bits(u)
        out = jacobi_step_bf16(bits)
        t = bf16_add(bits[1:2, 0:1], bits[1:2, 2:3])
        t = bf16_add(bits[0:1, 1:2], t)
        t = bf16_add(bits[2:3, 1:2], t)
        t = bf16_mul(f32_to_bits(np.float32(0.25)).reshape(1, 1), t)
        assert out[1, 1] == t[0, 0]

    def test_close_to_f32(self, problem_64):
        bits = problem_64.initial_grid_bf16()
        f32 = problem_64.initial_grid_f32()
        b_out = bits_to_f32(jacobi_solve_bf16(bits, 50))
        f_out = jacobi_solve_f32(f32, 50)
        # BF16 has ~2-3 decimal digits; fields stay within a few ULP drift
        assert np.abs(b_out - f_out).max() < 0.02

    def test_boundaries_untouched(self, problem_64):
        bits = problem_64.initial_grid_bf16()
        out = jacobi_solve_bf16(bits, 3)
        assert np.array_equal(out[:, 0], bits[:, 0])
        assert np.array_equal(out[0, :], bits[0, :])

    def test_deterministic(self, problem_64):
        bits = problem_64.initial_grid_bf16()
        a = jacobi_solve_bf16(bits, 7)
        b = jacobi_solve_bf16(bits, 7)
        assert np.array_equal(a, b)


class TestDirectSolve:
    def test_satisfies_discrete_laplace(self):
        problem = LaplaceProblem(nx=8, ny=6, left=2.0, top=1.0)
        u = solve_direct(problem.initial_grid_f32())
        interior = u[1:-1, 1:-1]
        avg = 0.25 * (u[1:-1, :-2] + u[1:-1, 2:] + u[:-2, 1:-1] + u[2:, 1:-1])
        assert np.abs(interior - avg).max() < 1e-10

    def test_constant_boundary_constant_solution(self):
        problem = LaplaceProblem(nx=8, ny=8, left=3.0, right=3.0,
                                 top=3.0, bottom=3.0, initial=0.0)
        u = solve_direct(problem.initial_grid_f32())
        assert np.abs(u[1:-1, 1:-1] - 3.0).max() < 1e-10


@settings(max_examples=25, deadline=None)
@given(left=st.floats(-10, 10), right=st.floats(-10, 10),
       top=st.floats(-10, 10), bottom=st.floats(-10, 10),
       initial=st.floats(-10, 10), iters=st.integers(0, 30))
def test_maximum_principle_f32(left, right, top, bottom, initial, iters):
    """Every Jacobi iterate stays within the boundary/initial extrema."""
    problem = LaplaceProblem(nx=8, ny=8, left=left, right=right, top=top,
                             bottom=bottom, initial=initial)
    lo, hi = problem.boundary_extrema()
    u = jacobi_solve_f32(problem.initial_grid_f32(), iters)
    eps = 1e-5 * max(1.0, abs(lo), abs(hi))
    assert u.min() >= lo - eps
    assert u.max() <= hi + eps


@settings(max_examples=25, deadline=None)
@given(left=st.floats(-10, 10), initial=st.floats(-10, 10),
       iters=st.integers(0, 20))
def test_maximum_principle_bf16(left, initial, iters):
    """The BF16 sweep also respects the maximum principle (up to rounding)."""
    problem = LaplaceProblem(nx=8, ny=8, left=left, initial=initial)
    lo, hi = problem.boundary_extrema()
    bits = jacobi_solve_bf16(problem.initial_grid_bf16(), iters)
    vals = bits_to_f32(bits)
    slack = 2 ** -7 * max(1.0, abs(lo), abs(hi))
    assert vals.min() >= lo - slack
    assert vals.max() <= hi + slack


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 999))
def test_linearity_f32(seed):
    """Jacobi is linear: step(a·u) == a·step(u) (exact for powers of two)."""
    rng = np.random.default_rng(seed)
    u = rng.normal(size=(8, 8)).astype(np.float32)
    a = np.float32(2.0)
    assert np.array_equal(jacobi_step_f32(a * u), a * jacobi_step_f32(u))
