"""CPU runner tests: decomposition equivalence, modelled timing/energy."""

import numpy as np
import pytest

from repro.cpu.jacobi import jacobi_step_f32
from repro.cpu.openmp import CpuJacobiRunner, decompose_rows
from repro.perfmodel.cpumodel import XeonModel


class TestDecomposeRows:
    def test_covers_exactly(self):
        chunks = decompose_rows(100, 7)
        assert sum(c for _, c in chunks) == 100
        ends = [s + c for s, c in chunks]
        starts = [s for s, _ in chunks]
        assert starts[0] == 0
        assert all(e == s for e, s in zip(ends[:-1], starts[1:]))

    def test_balanced(self):
        chunks = decompose_rows(10, 3)
        sizes = [c for _, c in chunks]
        assert max(sizes) - min(sizes) <= 1

    def test_bad_params(self):
        with pytest.raises(ValueError):
            decompose_rows(0, 2)
        with pytest.raises(ValueError):
            decompose_rows(10, 0)


class TestThreadedEquivalence:
    @pytest.mark.parametrize("threads", [1, 2, 3, 8])
    def test_bit_identical_to_global_sweep(self, threads, rng):
        runner = CpuJacobiRunner()
        u = rng.normal(size=(20, 16)).astype(np.float32)
        assert np.array_equal(runner.step_threaded(u, threads),
                              jacobi_step_f32(u))


class TestModelledRun:
    def test_single_core_rate_is_calibrated(self, problem_64):
        res = CpuJacobiRunner().run(problem_64.initial_grid_f32(), 10,
                                    n_threads=1)
        assert res.gpts == pytest.approx(1.41, rel=1e-6)

    def test_24_core_rate_is_calibrated(self, problem_64):
        res = CpuJacobiRunner().run(problem_64.initial_grid_f32(), 10,
                                    n_threads=24)
        assert res.gpts == pytest.approx(21.61, rel=1e-6)

    def test_energy_positive_and_scales_with_time(self, problem_64):
        r1 = CpuJacobiRunner().run(problem_64.initial_grid_f32(), 10, 1)
        r2 = CpuJacobiRunner().run(problem_64.initial_grid_f32(), 20, 1)
        assert r2.energy_j == pytest.approx(2 * r1.energy_j, rel=1e-6)

    def test_functional_answer_matches_reference(self, problem_64):
        from repro.cpu.jacobi import jacobi_solve_f32
        res = CpuJacobiRunner().run(problem_64.initial_grid_f32(), 25, 4)
        assert np.array_equal(
            res.grid, jacobi_solve_f32(problem_64.initial_grid_f32(), 25))

    def test_invalid_iterations(self, problem_64):
        with pytest.raises(ValueError):
            CpuJacobiRunner().run(problem_64.initial_grid_f32(), 0, 1)


class TestXeonModel:
    def test_monotone_in_cores(self):
        m = XeonModel()
        rates = [m.throughput_pts(n) for n in range(1, 25)]
        assert all(b > a for a, b in zip(rates, rates[1:]))

    def test_sublinear_scaling(self):
        m = XeonModel()
        assert m.throughput_pts(24) < 24 * m.throughput_pts(1)

    def test_power_calibration(self):
        """Table VIII RAPL energies back out ~49.7 W (1 core) / ~270 W (24)."""
        m = XeonModel()
        assert m.power_w(1) == pytest.approx(49.7, abs=0.5)
        assert m.power_w(24) == pytest.approx(270.0, abs=2.0)

    def test_table8_cpu_rows(self):
        """CPU rows of Table VIII reproduce from the model."""
        m = XeonModel()
        points, iters = 9216 * 1024, 5000
        e1 = m.energy_j(points, iters, 1)
        e24 = m.energy_j(points, iters, 24)
        assert e1 == pytest.approx(1657, rel=0.02)
        assert e24 == pytest.approx(588, rel=0.02)

    def test_bounds(self):
        m = XeonModel()
        with pytest.raises(ValueError):
            m.throughput_pts(0)
        with pytest.raises(ValueError):
            m.throughput_pts(25)
        with pytest.raises(ValueError):
            m.power_w(-1)
        with pytest.raises(ValueError):
            m.solve_time_s(0, 10, 1)
