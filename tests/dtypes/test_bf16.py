"""BF16 conversion and arithmetic: unit + property tests."""

import math
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtypes.bf16 import (
    bf16_add,
    bf16_mul,
    bf16_round,
    bf16_sub,
    bits_to_f32,
    f32_to_bits,
    is_bf16_exact,
)

finite_f32 = st.floats(width=32, allow_nan=False, allow_infinity=False)


class TestConversions:
    @pytest.mark.parametrize("value,bits", [
        (0.0, 0x0000),
        (1.0, 0x3F80),
        (-1.0, 0xBF80),
        (0.25, 0x3E80),
        (2.0, 0x4000),
        (float("inf"), 0x7F80),
        (float("-inf"), 0xFF80),
    ])
    def test_known_encodings(self, value, bits):
        assert int(f32_to_bits(value)) == bits

    def test_round_to_nearest_even_up(self):
        # 1.0 + 1.5*2^-8: the truncated tail is > half ULP -> rounds up.
        x = np.float32(1.0) + np.float32(1.5 * 2 ** -8)
        assert int(f32_to_bits(x)) == 0x3F81

    def test_round_to_nearest_even_tie(self):
        # exactly half an ULP above 1.0: tie -> round to even (stay at 1.0)
        x = np.uint32(0x3F80_8000).view(np.float32)  # 1.0 + 2^-8
        assert int(f32_to_bits(x)) == 0x3F80  # LSB even, stays
        # half ULP above the next representable (odd LSB) -> rounds up
        y = np.uint32(0x3F81_8000).view(np.float32)
        assert int(f32_to_bits(y)) == 0x3F82

    def test_nan_quietened(self):
        bits = f32_to_bits(float("nan"))
        f = bits_to_f32(bits)
        assert np.isnan(f)

    def test_nan_payload_does_not_round_to_inf(self):
        # a NaN whose payload would carry into the exponent when biased
        nan = np.uint32(0x7F80_FFFF).view(np.float32)
        out = bits_to_f32(f32_to_bits(nan))
        assert np.isnan(out)

    def test_negative_nan_keeps_sign(self):
        nan = np.uint32(0xFF80_0001).view(np.float32)
        bits = int(f32_to_bits(nan))
        assert bits & 0x8000

    def test_bits_to_f32_requires_uint16(self):
        with pytest.raises(TypeError):
            bits_to_f32(np.zeros(4, dtype=np.int32))

    def test_shape_preserved(self):
        x = np.ones((3, 5), dtype=np.float32)
        assert f32_to_bits(x).shape == (3, 5)
        assert bits_to_f32(f32_to_bits(x)).shape == (3, 5)

    def test_subnormal_f32_flushes_toward_zero_range(self):
        tiny = np.float32(1e-45)
        out = float(bf16_round(tiny))
        assert abs(out) <= 2e-45

    def test_is_bf16_exact(self):
        assert is_bf16_exact(1.0)
        assert is_bf16_exact(0.25)
        assert not is_bf16_exact(1.0 + 2 ** -10)


@settings(max_examples=300, deadline=None)
@given(finite_f32)
def test_roundtrip_idempotent(x):
    """bf16(bf16(x)) == bf16(x): rounding is a projection."""
    once = bf16_round(x)
    twice = bf16_round(once)
    assert np.array_equal(once, twice, equal_nan=True)


@settings(max_examples=300, deadline=None)
@given(finite_f32)
def test_rounding_error_within_half_ulp(x):
    """|bf16(x) - x| <= 2^-8 * |x| for normal values (half ULP of 7-bit
    mantissa), with an absolute floor near the subnormal range."""
    r = float(bf16_round(x))
    if math.isinf(r):  # overflow to inf at the top of the range is correct
        assert abs(x) > 3.3e38
        return
    tol = max(abs(x) * 2 ** -8, 2 ** -133)
    assert abs(r - x) <= tol


@settings(max_examples=300, deadline=None)
@given(finite_f32)
def test_exact_values_survive(x):
    """A value already representable in BF16 converts losslessly."""
    r = bf16_round(x)
    assert np.array_equal(bf16_round(r), r, equal_nan=True)


@settings(max_examples=200, deadline=None)
@given(finite_f32, finite_f32)
def test_add_commutative(a, b):
    pa, pb = f32_to_bits(a), f32_to_bits(b)
    assert np.array_equal(bf16_add(pa, pb), bf16_add(pb, pa), equal_nan=True)


@settings(max_examples=200, deadline=None)
@given(finite_f32, finite_f32)
def test_mul_commutative(a, b):
    pa, pb = f32_to_bits(a), f32_to_bits(b)
    assert np.array_equal(bf16_mul(pa, pb), bf16_mul(pb, pa), equal_nan=True)


@settings(max_examples=200, deadline=None)
@given(finite_f32)
def test_add_zero_identity(a):
    pa = f32_to_bits(a)
    zero = f32_to_bits(0.0)
    out = bits_to_f32(bf16_add(pa, zero))
    # value identity (bit identity would fail only for -0.0 + 0.0 = +0.0,
    # which IEEE mandates)
    assert np.array_equal(out, bits_to_f32(pa), equal_nan=True) or (
        float(out) == 0.0 and float(bits_to_f32(pa)) == 0.0)


@settings(max_examples=200, deadline=None)
@given(finite_f32)
def test_sub_self_is_zero(a):
    pa = f32_to_bits(a)
    if not np.isfinite(bits_to_f32(pa)):
        return  # f32 values above the BF16 range round to inf; inf-inf is nan
    out = float(bits_to_f32(bf16_sub(pa, pa)))
    assert out == 0.0


class TestArithmeticSemantics:
    def test_single_rounding_per_op(self):
        """The op computes at f32 then rounds once — catch double rounding."""
        a = f32_to_bits(np.float32(1.0))
        b = f32_to_bits(np.float32(2 ** -9))   # half a BF16 ULP of 1.0
        # at f32 the sum is exact: 1.001953125; rounding ties-to-even -> 1.0
        out = bits_to_f32(bf16_add(a, b))
        assert float(out) == 1.0

    def test_mul_by_quarter_matches_fpu_contract(self):
        vals = np.array([1.0, 2.0, 3.0, 100.0], dtype=np.float32)
        q = np.broadcast_to(f32_to_bits(0.25), vals.shape)
        out = bits_to_f32(bf16_mul(q, f32_to_bits(vals)))
        assert np.array_equal(out, bf16_round(vals * 0.25))

    def test_vector_shapes(self):
        a = f32_to_bits(np.ones((32, 32), dtype=np.float32))
        b = f32_to_bits(np.full((32, 32), 2.0, dtype=np.float32))
        out = bits_to_f32(bf16_add(a, b))
        assert out.shape == (32, 32)
        assert np.all(out == 3.0)
