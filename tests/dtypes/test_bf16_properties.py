"""Property-based tests for the BF16 software model.

The packer's round-to-nearest-even is checked against an *independent*
reference — exact integer arithmetic on the float32 bit pattern — over
the full uint16 space (exhaustive), a seeded random float32 sweep, and
(when hypothesis is installed) adversarial generated cases.  Arithmetic
helpers are checked for the algebraic properties the hardware contract
guarantees: commutativity of add/mul, the sub/add-negation identity,
and the multiplicative/additive identities.
"""

import numpy as np
import pytest

from repro.dtypes.bf16 import (
    bf16_add,
    bf16_mul,
    bf16_round,
    bf16_sub,
    bits_to_f32,
    f32_to_bits,
)

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - baked into the test image
    HAVE_HYPOTHESIS = False


def rne_reference(u32: int) -> int:
    """Round a float32 bit pattern to BF16 bits, by integer arithmetic.

    Keep the top 16 bits; the discarded low half decides: above the
    halfway point rounds up, below truncates, exactly halfway goes to
    the even (LSB-zero) candidate.  NaNs quieten to ``sign | 0x7FC0``.
    This deliberately shares no code with ``f32_to_bits`` (which uses
    the hardware's bias-add trick).
    """
    exp = u32 & 0x7F80_0000
    man = u32 & 0x007F_FFFF
    if exp == 0x7F80_0000 and man:
        return ((u32 >> 16) & 0x8000) | 0x7FC0
    low = u32 >> 16
    rem = u32 & 0xFFFF
    if rem > 0x8000 or (rem == 0x8000 and (low & 1)):
        low += 1
    return low & 0xFFFF


def _check_against_reference(u32s: np.ndarray) -> None:
    f32 = u32s.astype(np.uint32).view(np.float32)
    got = f32_to_bits(f32)
    want = np.array([rne_reference(int(u)) for u in u32s],
                    dtype=np.uint16)
    mismatch = np.nonzero(got != want)[0]
    assert mismatch.size == 0, (
        f"{mismatch.size} mismatches; first at bits "
        f"0x{int(u32s[mismatch[0]]):08X}: got 0x{int(got[mismatch[0]]):04X} "
        f"want 0x{int(want[mismatch[0]]):04X}")


class TestRoundToNearestEven:
    def test_exhaustive_upper_half_patterns(self):
        """All 65536 float32 values whose low half is zero are exact."""
        bits = np.arange(1 << 16, dtype=np.uint32) << np.uint32(16)
        _check_against_reference(bits)

    def test_seeded_random_sweep(self):
        """200k seeded random bit patterns match the integer reference."""
        rng = np.random.default_rng(0xB16)
        _check_against_reference(rng.integers(0, 1 << 32, size=200_000,
                                              dtype=np.uint32))

    def test_halfway_ties_go_to_even(self):
        """Patterns ending exactly in 0x8000 round to the even candidate."""
        rng = np.random.default_rng(0xE7E)
        tops = rng.integers(0, 1 << 16, size=4096, dtype=np.uint32)
        # keep exponent < 0xFF so no NaN/inf lands in the tie set
        tops = tops[((tops >> 7) & 0xFF) != 0xFF]
        _check_against_reference((tops << np.uint32(16)) | np.uint32(0x8000))

    def test_nan_quietening(self):
        """Every NaN input becomes a quiet NaN with its sign preserved."""
        rng = np.random.default_rng(7)
        man = rng.integers(1, 1 << 23, size=1000, dtype=np.uint32)
        sign = rng.integers(0, 2, size=1000, dtype=np.uint32) << np.uint32(31)
        nans = sign | np.uint32(0x7F80_0000) | man
        out = f32_to_bits(nans.view(np.float32))
        assert np.array_equal(out & np.uint16(0x7FFF), np.full(1000, 0x7FC0,
                                                               np.uint16))
        assert np.array_equal((out >> 14) & 1, np.ones(1000, np.uint16))
        assert np.array_equal(out >> 15, (sign >> 31).astype(np.uint16))

    def test_roundtrip_is_identity_on_bf16_values(self):
        """pack(unpack(b)) == b for every non-NaN BF16 pattern, and
        canonicalises every NaN pattern to sign|0x7FC0."""
        bits = np.arange(1 << 16, dtype=np.uint16)
        out = f32_to_bits(bits_to_f32(bits))
        is_nan = ((bits & 0x7F80) == 0x7F80) & ((bits & 0x007F) != 0)
        expect = np.where(is_nan, (bits & 0x8000) | np.uint16(0x7FC0), bits)
        assert np.array_equal(out, expect)


def _random_bf16_bits(rng, n, finite=False):
    bits = rng.integers(0, 1 << 16, size=n, dtype=np.uint16)
    if finite:
        exp = (bits >> 7) & 0xFF
        bits = bits[exp != 0xFF]
    return bits


class TestArithmeticProperties:
    def test_add_mul_commute(self):
        rng = np.random.default_rng(11)
        a = _random_bf16_bits(rng, 20_000, finite=True)
        b = _random_bf16_bits(rng, 20_000, finite=True)[:a.size]
        a = a[:b.size]
        assert np.array_equal(bf16_add(a, b), bf16_add(b, a))
        assert np.array_equal(bf16_mul(a, b), bf16_mul(b, a))

    def test_sub_is_add_of_negation(self):
        rng = np.random.default_rng(13)
        a = _random_bf16_bits(rng, 20_000, finite=True)
        b = _random_bf16_bits(rng, 20_000, finite=True)[:a.size]
        a = a[:b.size]
        assert np.array_equal(bf16_sub(a, b),
                              bf16_add(a, b ^ np.uint16(0x8000)))

    def test_additive_identity(self):
        """a + (+0) == a for every BF16 value except -0 (IEEE: -0 + +0
        is +0 under round-to-nearest)."""
        bits = np.arange(1 << 16, dtype=np.uint16)
        finite_nonneg0 = (((bits >> 7) & 0xFF) != 0xFF) & (bits != 0x8000)
        a = bits[finite_nonneg0]
        zero = np.zeros_like(a)
        assert np.array_equal(bf16_add(a, zero), a)
        minus0 = np.array([0x8000], dtype=np.uint16)
        assert bf16_add(minus0, np.array([0], np.uint16))[0] == 0

    def test_multiplicative_identity(self):
        """a * 1 == a for every non-NaN BF16 value, including ±0/±inf."""
        bits = np.arange(1 << 16, dtype=np.uint16)
        is_nan = ((bits & 0x7F80) == 0x7F80) & ((bits & 0x007F) != 0)
        a = bits[~is_nan]
        one = np.full_like(a, f32_to_bits(np.float32(1.0)))
        assert np.array_equal(bf16_mul(a, one), a)

    def test_single_rounding_matches_bf16_round(self):
        """bf16_add == round(unpack(a) + unpack(b)): one output rounding."""
        rng = np.random.default_rng(17)
        a = _random_bf16_bits(rng, 20_000, finite=True)
        b = _random_bf16_bits(rng, 20_000, finite=True)[:a.size]
        a = a[:b.size]
        with np.errstate(over="ignore"):
            direct = f32_to_bits(bits_to_f32(a) + bits_to_f32(b))
        assert np.array_equal(bf16_add(a, b), direct)


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
class TestHypothesisProperties:
    @settings(derandomize=True, max_examples=500, deadline=None)
    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_any_bit_pattern_matches_reference(self, u32):
        _check_against_reference(np.array([u32], dtype=np.uint32))

    @settings(derandomize=True, max_examples=500, deadline=None)
    @given(st.floats(width=32, allow_nan=True, allow_infinity=True))
    def test_any_float_matches_reference(self, x):
        u32 = np.float32(x).view(np.uint32)
        _check_against_reference(np.array([u32], dtype=np.uint32))

    @settings(derandomize=True, max_examples=300, deadline=None)
    @given(st.floats(width=32, allow_nan=False, allow_infinity=False),
           st.floats(width=32, allow_nan=False, allow_infinity=False))
    def test_add_commutes_and_rounds_once(self, x, y):
        a = f32_to_bits(np.float32(x)).reshape(1)
        b = f32_to_bits(np.float32(y)).reshape(1)
        ab, ba = bf16_add(a, b), bf16_add(b, a)
        assert np.array_equal(ab, ba)
        with np.errstate(over="ignore"):
            want = f32_to_bits(bits_to_f32(a) + bits_to_f32(b))
        assert np.array_equal(ab, want)

    @settings(derandomize=True, max_examples=300, deadline=None)
    @given(st.floats(width=32, allow_nan=False, allow_infinity=False))
    def test_round_is_idempotent(self, x):
        once = bf16_round(np.float32(x))
        assert np.array_equal(bf16_round(once), once)
