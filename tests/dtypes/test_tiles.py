"""Tile geometry tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtypes.tiles import (
    TILE_DIM,
    TILE_ELEMS,
    TILE_NBYTES,
    Tile,
    domain_to_tiles,
    tiles_to_domain,
)


class TestConstants:
    def test_fpu_width(self):
        # 16384-bit SIMD at 16 bits/element = 1024 elements = 32x32
        assert TILE_DIM * TILE_DIM == TILE_ELEMS == 16384 // 16
        assert TILE_NBYTES == 2048


class TestTile:
    def test_from_bits_roundtrip(self, rng):
        flat = rng.integers(0, 2 ** 16, TILE_ELEMS, dtype=np.uint16)
        t = Tile.from_bits(flat)
        assert np.array_equal(t.data.ravel(), flat)

    def test_wrong_size_rejected(self):
        with pytest.raises(ValueError):
            Tile.from_bits(np.zeros(100, dtype=np.uint16))

    def test_wrong_dtype_rejected(self):
        with pytest.raises(ValueError):
            Tile(np.zeros((32, 32), dtype=np.float32))

    def test_bytes_roundtrip(self, rng):
        flat = rng.integers(0, 2 ** 16, TILE_ELEMS, dtype=np.uint16)
        t = Tile.from_bits(flat)
        assert Tile.from_bytes(t.to_bytes()) == t

    def test_byte_payload_little_endian(self):
        t = Tile.filled(0x1234)
        raw = t.to_bytes()
        assert raw[0] == 0x34 and raw[1] == 0x12
        assert len(raw) == TILE_NBYTES

    def test_filled(self):
        t = Tile.filled(0x3F80)
        assert np.all(t.data == 0x3F80)

    def test_equality_and_hash(self):
        a, b = Tile.filled(1), Tile.filled(1)
        assert a == b and hash(a) == hash(b)
        assert a != Tile.filled(2)
        assert a != "not a tile"


class TestDomainTiling:
    def test_roundtrip(self, rng):
        dom = rng.integers(0, 2 ** 16, (96, 64), dtype=np.uint16)
        tiles = domain_to_tiles(dom)
        assert tiles.shape == (3, 2, 32, 32)
        assert np.array_equal(tiles_to_domain(tiles), dom)

    def test_tile_content_matches_block(self, rng):
        dom = rng.integers(0, 2 ** 16, (64, 64), dtype=np.uint16)
        tiles = domain_to_tiles(dom)
        assert np.array_equal(tiles[1, 0], dom[32:64, 0:32])
        assert np.array_equal(tiles[0, 1], dom[0:32, 32:64])

    def test_non_multiple_rejected(self):
        with pytest.raises(ValueError):
            domain_to_tiles(np.zeros((33, 32), dtype=np.uint16))

    def test_bad_tile_array_rejected(self):
        with pytest.raises(ValueError):
            tiles_to_domain(np.zeros((2, 2, 16, 16), dtype=np.uint16))


@settings(max_examples=30, deadline=None)
@given(ny=st.integers(1, 4), nx=st.integers(1, 4), seed=st.integers(0, 999))
def test_tiling_is_a_bijection(ny, nx, seed):
    rng = np.random.default_rng(seed)
    dom = rng.integers(0, 2 ** 16, (ny * TILE_DIM, nx * TILE_DIM),
                       dtype=np.uint16)
    assert np.array_equal(tiles_to_domain(domain_to_tiles(dom)), dom)


class TestTilizedFormat:
    """The real tt-metal 16x16-face DRAM layout (host interop)."""

    def test_roundtrip(self, rng):
        from repro.dtypes.tiles import tilize, untilize
        m = rng.integers(0, 2 ** 16, (64, 96), dtype=np.uint16)
        assert np.array_equal(untilize(tilize(m), 64, 96), m)

    def test_face_order_within_a_tile(self):
        from repro.dtypes.tiles import tilize
        m = np.arange(32 * 32, dtype=np.uint16).reshape(32, 32)
        flat = tilize(m)
        # face 0 (rows 0-15, cols 0-15) comes first, row-major
        assert flat[0] == m[0, 0]
        assert flat[15] == m[0, 15]
        assert flat[16] == m[1, 0]
        # face 1 (rows 0-15, cols 16-31) starts at element 256
        assert flat[256] == m[0, 16]
        # face 2 (rows 16-31, cols 0-15) at 512
        assert flat[512] == m[16, 0]
        # face 3 at 768
        assert flat[768] == m[16, 16]

    def test_tile_order_row_major(self):
        from repro.dtypes.tiles import tilize
        m = np.zeros((32, 64), dtype=np.uint16)
        m[0, 32] = 7  # first element of the second tile
        flat = tilize(m)
        assert flat[1024] == 7

    def test_validation(self):
        from repro.dtypes.tiles import tilize, untilize
        with pytest.raises(ValueError):
            tilize(np.zeros((30, 32), dtype=np.uint16))
        with pytest.raises(ValueError):
            untilize(np.zeros(1024, dtype=np.uint16), 32, 64)
        with pytest.raises(ValueError):
            untilize(np.zeros(1024, dtype=np.uint16), 31, 32)


@settings(max_examples=30, deadline=None)
@given(ty=st.integers(1, 3), tx=st.integers(1, 3), seed=st.integers(0, 999))
def test_tilize_is_a_bijection(ty, tx, seed):
    from repro.dtypes.tiles import tilize, untilize
    rng = np.random.default_rng(seed)
    m = rng.integers(0, 2 ** 16, (ty * TILE_DIM, tx * TILE_DIM),
                     dtype=np.uint16)
    flat = tilize(m)
    assert flat.size == m.size
    assert np.array_equal(untilize(flat, *m.shape), m)
