"""Tests for the analysis helpers (metrics + table rendering)."""

import pytest

from repro.analysis.metrics import geomean_ratio, gpt_per_s, ratio, speedup
from repro.analysis.report import Table, format_seconds, format_si


class TestMetrics:
    def test_gpt_per_s(self):
        # 512x512 x 10000 iterations in 1 second = 2.62 GPt/s
        assert gpt_per_s(512 * 512, 10000, 1.0) == pytest.approx(2.62144)

    def test_gpt_validation(self):
        with pytest.raises(ValueError):
            gpt_per_s(0, 1, 1.0)
        with pytest.raises(ValueError):
            gpt_per_s(1, 1, 0.0)

    def test_speedup(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)
        with pytest.raises(ValueError):
            speedup(0.0, 1.0)

    def test_ratio(self):
        assert ratio(3.0, 2.0) == pytest.approx(1.5)
        with pytest.raises(ValueError):
            ratio(1.0, 0.0)

    def test_geomean_ratio(self):
        pairs = [(2.0, 1.0), (1.0, 2.0)]  # 2x over and 2x under
        assert geomean_ratio(pairs) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            geomean_ratio([])


class TestFormatting:
    def test_format_si(self):
        assert format_si(22.06e9, "Pt/s") == "22.1 GPt/s"
        assert format_si(1500.0) == "1.5 K"
        assert format_si(3.0) == "3"

    def test_format_seconds(self):
        assert format_seconds(0.011) == "0.011"
        assert format_seconds(12.659) == "12.659"
        assert "e-" in format_seconds(1e-5)


class TestTable:
    def test_render_alignment(self):
        t = Table("Demo", ["a", "long column"])
        t.add_row("x", 1)
        t.add_row("longer", 2)
        text = t.render()
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert all(len(line) == len(lines[2]) for line in lines[2:])

    def test_row_arity_checked(self):
        t = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row("only one")

    def test_footnotes(self):
        t = Table("T", ["a"])
        t.add_row("1")
        t.add_footnote("hello")
        assert "note: hello" in t.render()

    def test_needs_columns(self):
        with pytest.raises(ValueError):
            Table("T", [])
