"""CLI tests (driving main() in-process)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table_number_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "9"])


class TestCommands:
    def test_solve_cpu(self, capsys):
        assert main(["solve", "--backend", "cpu", "--nx", "32",
                     "--ny", "32", "--iterations", "10"]) == 0
        out = capsys.readouterr().out
        assert "GPt/s" in out and "backend=cpu" in out

    def test_solve_device(self, capsys):
        assert main(["solve", "--backend", "e150", "--nx", "32",
                     "--ny", "32", "--iterations", "5"]) == 0
        out = capsys.readouterr().out
        assert "interior range" in out

    def test_solve_model_multicore(self, capsys):
        assert main(["solve", "--backend", "e150-model", "--cores", "2x2",
                     "--nx", "32", "--ny", "32", "--iterations", "5"]) == 0
        assert "cores=(2, 2)" in capsys.readouterr().out

    def test_table_quick(self, capsys):
        assert main(["table", "8", "--quick"]) == 0
        assert "Table VIII" in capsys.readouterr().out

    def test_table5_quick(self, capsys):
        assert main(["table", "5", "--quick"]) == 0
        assert "Replication" in capsys.readouterr().out

    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "fig6" in out

    def test_stream(self, capsys):
        assert main(["stream", "--rows", "32", "--row-elems", "256",
                     "--read-batch", "64"]) == 0
        out = capsys.readouterr().out
        assert "GB/s read" in out

    def test_profile(self, capsys):
        assert main(["profile", "--nx", "32", "--ny", "32",
                     "--iterations", "2", "--variant", "initial"]) == 0
        out = capsys.readouterr().out
        assert "bottleneck" in out
