"""CLI tests (driving main() in-process)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table_number_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "9"])


class TestCommands:
    def test_solve_cpu(self, capsys):
        assert main(["solve", "--backend", "cpu", "--nx", "32",
                     "--ny", "32", "--iterations", "10"]) == 0
        out = capsys.readouterr().out
        assert "GPt/s" in out and "backend=cpu" in out

    def test_solve_device(self, capsys):
        assert main(["solve", "--backend", "e150", "--nx", "32",
                     "--ny", "32", "--iterations", "5"]) == 0
        out = capsys.readouterr().out
        assert "interior range" in out

    def test_solve_model_multicore(self, capsys):
        assert main(["solve", "--backend", "e150-model", "--cores", "2x2",
                     "--nx", "32", "--ny", "32", "--iterations", "5"]) == 0
        assert "cores=(2, 2)" in capsys.readouterr().out

    def test_table_quick(self, capsys):
        assert main(["table", "8", "--quick"]) == 0
        assert "Table VIII" in capsys.readouterr().out

    def test_table5_quick(self, capsys):
        assert main(["table", "5", "--quick"]) == 0
        assert "Replication" in capsys.readouterr().out

    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "fig6" in out

    def test_stream(self, capsys):
        assert main(["stream", "--rows", "32", "--row-elems", "256",
                     "--read-batch", "64"]) == 0
        out = capsys.readouterr().out
        assert "GB/s read" in out

    def test_profile(self, capsys):
        assert main(["profile", "--nx", "32", "--ny", "32",
                     "--iterations", "2", "--variant", "initial"]) == 0
        out = capsys.readouterr().out
        assert "bottleneck" in out


class TestSweepCommand:
    _argv = ["sweep", "pages", "--rows", "32", "--row-elems", "256"]

    def test_parallel_stdout_matches_sequential(self, capsys):
        assert main(self._argv + ["--no-cache", "-j", "1"]) == 0
        seq = capsys.readouterr().out
        assert main(self._argv + ["--no-cache", "-j", "2"]) == 0
        par = capsys.readouterr().out
        assert par == seq
        assert "sweep pages" in seq and "runtime s" in seq

    def test_global_jobs_flag_before_subcommand(self, capsys):
        assert main(["-j", "2", "--no-cache"] + self._argv) == 0
        assert "sweep pages" in capsys.readouterr().out

    def test_report_flag_adds_job_table(self, capsys):
        assert main(self._argv + ["--no-cache", "--report"]) == 0
        out = capsys.readouterr().out
        assert "Sweep job report" in out

    def test_second_run_is_served_from_cache(self, capsys, monkeypatch,
                                             tmp_path):
        monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path / "cache"))
        assert main(self._argv) == 0
        cold = capsys.readouterr()
        assert main(self._argv) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out          # byte-identical from cache
        assert "hits=0" in cold.err
        assert "failures=0 " in warm.err
        assert "hits=0" not in warm.err      # every point was a hit

    def test_batch_and_multicore_kinds(self, capsys):
        assert main(["sweep", "batch", "--rows", "32", "--row-elems",
                     "256", "--no-cache"]) == 0
        assert "sweep batch" in capsys.readouterr().out
        assert main(["sweep", "multicore", "--rows", "32", "--row-elems",
                     "256", "--no-cache"]) == 0
        assert "sweep multicore" in capsys.readouterr().out


class TestFaultsSeeds:
    _argv = ["faults", "--seeds", "0,1", "--iterations", "16",
             "--no-cache"]

    def test_multi_seed_summary(self, capsys):
        assert main(self._argv) == 0
        out = capsys.readouterr().out
        assert "Campaign sweep summary" in out
        assert "seed=0" in out and "seed=1" in out

    def test_parallel_matches_sequential(self, capsys):
        assert main(self._argv + ["-j", "1"]) == 0
        seq = capsys.readouterr().out
        assert main(self._argv + ["-j", "2"]) == 0
        par = capsys.readouterr().out
        assert par == seq

    def test_report_flag(self, capsys):
        assert main(self._argv + ["-j", "2", "--report"]) == 0
        out = capsys.readouterr().out
        assert "Sweep job report" in out

    def test_single_seed_output_unchanged(self, capsys):
        # the pre-engine single-campaign path must be byte-stable
        assert main(["faults", "--seed", "1", "--iterations", "16"]) == 0
        out = capsys.readouterr().out
        assert "Fault-injection campaign (seed=1)" in out


class TestParallelTableFlags:
    def test_table5_quick_j2_matches_sequential(self, capsys):
        assert main(["table", "5", "--quick", "--no-cache", "-j", "1"]) == 0
        seq = capsys.readouterr().out
        assert main(["table", "5", "--quick", "--no-cache", "-j", "2"]) == 0
        par = capsys.readouterr().out
        assert par == seq

    def test_table8_quick_j2_matches_sequential(self, capsys):
        assert main(["table", "8", "--quick", "--no-cache", "-j", "1"]) == 0
        seq = capsys.readouterr().out
        assert main(["table", "8", "--quick", "--no-cache", "-j", "2"]) == 0
        par = capsys.readouterr().out
        assert par == seq
