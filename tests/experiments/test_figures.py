"""Figure regeneration tests."""

from repro.experiments.figures import all_figures, fig1, fig2, fig3, fig4, fig5, fig6


class TestFigures:
    def test_fig1_tensix_structure(self):
        text = fig1()
        assert "dm0" in text and "dm1" in text
        assert "FPU" in text
        assert "1024 KiB" in text or "SRAM" in text
        assert "108 workers" in text

    def test_fig2_domain(self):
        text = fig2()
        assert "B" in text and "boundary" in text

    def test_fig3_dataflow(self):
        text = fig3()
        assert "NoC0" in text and "NoC1" in text
        assert "memcpy" in text

    def test_fig4_batches(self):
        text = fig4()
        assert "8x8 batches" in text  # 256/32 = 8

    def test_fig5_padding(self):
        text = fig5()
        assert "byte 32" in text and "pad" in text

    def test_fig6_row_batches(self):
        text = fig6()
        assert "2 chunk column(s)" in text

    def test_all_figures_complete(self):
        figs = all_figures()
        assert sorted(figs) == [f"fig{i}" for i in range(1, 7)]
        assert all(len(v) > 50 for v in figs.values())
