"""Golden-artifact tests for the observability layer.

A tiny fixed program (single-core optimised Jacobi, 32x16, 2
iterations) must keep producing *exactly* the same normalised Perfetto
trace and profile table.  The simulator's timestamps are deterministic
down to the last float bit, so these goldens pin the whole stack —
engine scheduling, cost charging, fused-region accounting, tracer and
profiler rendering.  An engine refactor that shifts any interval or
reorders any row fails here even if the solver output is untouched.

Regenerate (after an *intentional* change) with::

    REPRO_REGEN_GOLDEN=1 python -m pytest tests/experiments/test_golden_artifacts.py
"""

import json
import os
import pathlib

import pytest

from repro.analysis.profile import profile_device
from repro.analysis.tracing import Tracer
from repro.arch.device import GrayskullDevice
from repro.core.grid import LaplaceProblem
from repro.core.jacobi_optimized import OptimizedJacobiRunner

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
TRACE_GOLDEN = GOLDEN_DIR / "jacobi_32x16_trace.json"
PROFILE_GOLDEN = GOLDEN_DIR / "jacobi_32x16_profile.txt"

REGEN = os.environ.get("REPRO_REGEN_GOLDEN", "") not in ("", "0")


@pytest.fixture(scope="module")
def tiny_run():
    dev = GrayskullDevice(dram_bank_capacity=1 << 20)
    dev.tracer = Tracer()
    OptimizedJacobiRunner(dev, LaplaceProblem(nx=32, ny=16)).run(
        2, read_back=False)
    return dev


def normalised_trace(tracer: Tracer) -> str:
    """Canonical JSON for the Chrome trace: events sorted, keys sorted.

    Sorting makes the golden robust to benign insertion-order changes
    (e.g. a future tracer that buffers per-core) while still pinning
    every interval's exact start, duration, slot and kind.
    """
    doc = tracer.to_chrome_trace()
    doc["traceEvents"] = sorted(
        doc["traceEvents"],
        key=lambda e: (e["pid"], e["tid"], e["ts"], e["dur"], e["name"]))
    return json.dumps(doc, indent=1, sort_keys=True) + "\n"


def _check_or_regen(path: pathlib.Path, text: str) -> None:
    if REGEN:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"golden {path} missing — run with REPRO_REGEN_GOLDEN=1 to create")
    golden = path.read_text()
    assert text == golden, (
        f"{path.name} drifted from the checked-in golden; if the change "
        "is intentional, regenerate with REPRO_REGEN_GOLDEN=1")


def test_perfetto_trace_matches_golden(tiny_run):
    _check_or_regen(TRACE_GOLDEN, normalised_trace(tiny_run.tracer))


def test_profile_table_matches_golden(tiny_run):
    _check_or_regen(PROFILE_GOLDEN,
                    profile_device(tiny_run).render() + "\n")


def test_trace_golden_is_wellformed():
    """The checked-in artifact itself parses and has the expected shape
    (guards against a bad regeneration being committed)."""
    if not TRACE_GOLDEN.exists():
        pytest.skip("golden not generated yet")
    doc = json.loads(TRACE_GOLDEN.read_text())
    events = doc["traceEvents"]
    assert events, "golden trace has no events"
    assert {e["ph"] for e in events} == {"X"}
    assert {e["name"] for e in events} <= {"busy", "stall"}
    slots = {e["tid"] for e in events}
    assert slots == {"dm0", "compute", "dm1"}
    assert all(e["dur"] > 0 for e in events)
