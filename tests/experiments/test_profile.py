"""Profiler and DPRINT tests."""

import numpy as np
import pytest

from repro.analysis.profile import profile_device
from repro.arch.tensix import COMPUTE, DATA_MOVER_0, DATA_MOVER_1
from repro.core.grid import LaplaceProblem
from repro.core.jacobi_initial import InitialJacobiRunner
from repro.core.jacobi_optimized import OptimizedJacobiRunner
from repro.ttmetal import (
    CreateCircularBuffer,
    CreateKernel,
    EnqueueProgram,
    Finish,
    Program,
)


class TestProfiler:
    def test_identifies_the_memcpy_bottleneck(self, device_factory):
        """Profiling the initial kernel points at dm0 — where the 4-CB
        memcpy lives — reproducing the paper's Table-II conclusion from a
        single run."""
        dev = device_factory()
        InitialJacobiRunner(dev, LaplaceProblem(nx=64, ny=64)).run(
            2, read_back=False)
        prof = profile_device(dev)
        coord, slot = prof.bottleneck()
        assert slot == DATA_MOVER_0

    def test_optimized_kernel_bottleneck_is_compute(self, device_factory):
        dev = device_factory()
        OptimizedJacobiRunner(dev, LaplaceProblem(nx=64, ny=64)).run(
            5, read_back=False)
        prof = profile_device(dev)
        _coord, slot = prof.bottleneck()
        assert slot == COMPUTE

    def test_busy_plus_stall_bounded_by_wall(self, device_factory):
        dev = device_factory()
        OptimizedJacobiRunner(dev, LaplaceProblem(nx=32, ny=32)).run(3)
        prof = profile_device(dev)
        for cp in prof.cores:
            for slot in (DATA_MOVER_0, COMPUTE, DATA_MOVER_1):
                total = cp.busy[slot] + cp.stall[slot]
                assert total <= prof.wall_time_s * 1.01

    def test_stall_time_nonzero_in_pipelines(self, device_factory):
        """Someone always waits in a producer/consumer pipeline."""
        dev = device_factory()
        OptimizedJacobiRunner(dev, LaplaceProblem(nx=32, ny=32)).run(
            3, read_back=False)
        prof = profile_device(dev)
        total_stall = sum(cp.stall[s] for cp in prof.cores
                          for s in (DATA_MOVER_0, COMPUTE, DATA_MOVER_1))
        assert total_stall > 0

    def test_bank_utilisation_in_range(self, device_factory):
        dev = device_factory()
        OptimizedJacobiRunner(dev, LaplaceProblem(nx=32, ny=32)).run(2)
        prof = profile_device(dev)
        assert all(0 <= u <= 1.01 for u in prof.bank_utilisation())

    def test_render(self, device_factory):
        dev = device_factory()
        OptimizedJacobiRunner(dev, LaplaceProblem(nx=32, ny=32)).run(
            2, read_back=False)
        text = profile_device(dev).render()
        assert "bottleneck" in text and "dm0" in text

    def test_empty_device(self, device_factory):
        prof = profile_device(device_factory())
        assert prof.cores == []
        assert prof.bottleneck() is None


class TestDprint:
    def _run_with_dprint(self, dev, enabled):
        dev.print_server_enabled = enabled

        def k(ctx):
            for i in range(3):
                yield from ctx.dprint(f"step {i}")
                yield ctx.sim.timeout(1e-7)
        prog = Program(dev)
        CreateKernel(prog, k, dev.core(0, 0), DATA_MOVER_0)
        EnqueueProgram(dev, prog)
        return Finish(dev)

    def test_disabled_by_default_and_free(self, device_factory):
        dev = device_factory()
        t = self._run_with_dprint(dev, enabled=False)
        assert dev.dprint_log == []
        assert t == pytest.approx(3e-7, rel=0.01)

    def test_enabled_collects_and_costs(self, device_factory):
        dev = device_factory()
        t = self._run_with_dprint(dev, enabled=True)
        assert len(dev.dprint_log) == 3
        assert dev.dprint_log[0][3] == "step 0"
        # the paper's observation: printing dominates the runtime
        assert t > 10 * 3e-7

    def test_log_carries_core_and_slot(self, device_factory):
        dev = device_factory()
        self._run_with_dprint(dev, enabled=True)
        _t, coord, slot, _msg = dev.dprint_log[0]
        assert coord == (0, 0) and slot == DATA_MOVER_0
