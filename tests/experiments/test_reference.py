"""Sanity checks on the transcribed paper data itself."""

import pytest

from repro.experiments import reference as ref


class TestTranscription:
    def test_table1_values(self):
        assert ref.TABLE1_GPTS["cpu_single_core"] == 1.41
        assert ref.TABLE1_GPTS["initial"] < ref.TABLE1_GPTS["write_opt"] \
            < ref.TABLE1_GPTS["double_buffered"]

    def test_table2_bottleneck_is_memcpy(self):
        rates = ref.TABLE2_GPTS
        memcpy_only = rates[(False, True, False, False)]
        assert memcpy_only == min(
            v for k, v in rates.items() if k != (True, True, False, False))

    def test_tables34_batch_sets_match(self):
        assert set(ref.TABLE3_RUNTIME) == set(ref.TABLE4_RUNTIME)
        assert sorted(ref.TABLE3_RUNTIME, reverse=True)[0] == 16384
        assert min(ref.TABLE3_RUNTIME) == 4

    def test_table3_monotone_in_batch_size(self):
        """The paper's own data: smaller batches never get faster (read)."""
        sizes = sorted(ref.TABLE3_RUNTIME, reverse=True)
        reads = [ref.TABLE3_RUNTIME[s][0] for s in sizes]
        assert all(b >= a * 0.99 for a, b in zip(reads, reads[1:]))

    def test_table4_never_faster_than_table3(self):
        """Non-contiguous access never beats contiguous in the paper —
        modulo its own measurement noise (the 512 B sync-write cell reads
        0.032 vs 0.038, ~16 % 'better' non-contiguous)."""
        for size in ref.TABLE3_RUNTIME:
            for i in range(4):
                assert ref.TABLE4_RUNTIME[size][i] >= \
                    ref.TABLE3_RUNTIME[size][i] * 0.8

    def test_table5_roughly_linear(self):
        t1 = ref.TABLE5_RUNTIME[1]
        t32 = ref.TABLE5_RUNTIME[32]
        assert 8 < t32 / t1 < 32

    def test_table6_interleaving_sweet_spot(self):
        """32K/16K pages are the best at replication 32 (the paper's
        conclusion)."""
        best = min(ref.TABLE6_RUNTIME, key=lambda p: ref.TABLE6_RUNTIME[p][3])
        assert best in (32 << 10, 16 << 10)

    def test_table7_flat_beyond_two_cores(self):
        for page, runtimes in ref.TABLE7_RUNTIME.items():
            t2, t4, t8 = runtimes[1], runtimes[2], runtimes[3]
            assert t8 >= t2 * 0.4  # nowhere near 4x scaling

    def test_table8_core_counts_consistent(self):
        for row in ref.TABLE8_ROWS:
            typ, total, cy, cx, cards, gpts, energy = row
            if cy is not None:
                assert cy * cx == total / max(cards, 1) * max(cards, 1) \
                    or cy * cx == total
                assert cy * cx == total, row
            assert gpts > 0 and energy > 0

    def test_table8_energy_story(self):
        """e150 full card ~5x less energy than the 24-core CPU."""
        rows = {(r[0], r[1]): r for r in ref.TABLE8_ROWS}
        cpu24 = rows[("cpu", 24)]
        e150 = rows[("e150", 108)]
        assert 4.0 < cpu24[6] / e150[6] < 7.0
        # and roughly comparable speed
        assert 0.9 < e150[5] / cpu24[5] < 1.1

    def test_table8_multicard_linear(self):
        rows = {(r[0], r[1]): r for r in ref.TABLE8_ROWS}
        one = rows[("e150", 108)][5]
        two = rows[("e150 x 2", 216)][5]
        four = rows[("e150 x 4", 432)][5]
        assert two == pytest.approx(2 * one, rel=0.01)
        assert four == pytest.approx(4 * one, rel=0.02)

    def test_problem_definitions(self):
        assert ref.TABLE1_PROBLEM["nx"] * ref.TABLE1_PROBLEM["ny"] == 262144
        assert ref.TABLE8_PROBLEM["nx"] * ref.TABLE8_PROBLEM["ny"] == \
            9216 * 1024
        assert ref.STREAM_PROBLEM["rows"] * ref.STREAM_PROBLEM["row_elems"] \
            * ref.STREAM_PROBLEM["elem_bytes"] == 64 << 20
