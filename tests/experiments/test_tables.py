"""Experiment-driver tests at reduced scale (full scale runs in benchmarks/)."""

import pytest

from repro.experiments import table1, table2, table34, table567, table8
from repro.experiments.common import ExperimentResult, RowComparison


class TestCommon:
    def test_ratio(self):
        c = RowComparison("x", 2.0, 4.0)
        assert c.ratio == pytest.approx(0.5)
        assert RowComparison("y", 1.0, None).ratio is None

    def test_worst_ratio(self):
        from repro.analysis.report import Table
        res = ExperimentResult("t", "t", Table("t", ["a"]))
        res.comparisons.extend([
            RowComparison("a", 2.0, 1.0),   # 2x over
            RowComparison("b", 1.0, 3.0),   # 3x under
            RowComparison("c", 1.0, None),
        ])
        assert res.worst_ratio() == pytest.approx(3.0)


class TestTable1:
    def test_reduced_scale(self):
        res = table1.run(nx=64, ny=64, iterations=100, sim_iterations=2)
        assert len(res.comparisons) == 4
        # off-paper-size runs carry no paper values
        assert all(c.paper is None for c in res.comparisons)
        rates = {c.label: c.measured for c in res.comparisons}
        assert rates["Double buffering"] > rates["Initial"]
        assert rates["CPU single core"] == pytest.approx(1.41)
        assert "Table I" in res.render()


class TestTable2:
    def test_reduced_scale_ordering(self):
        res = table2.run(nx=64, ny=64, iterations=100, sim_iterations=2)
        rates = [c.measured for c in res.comparisons]
        assert len(rates) == 6
        # skeleton fastest, memcpy rows slowest
        assert rates[0] == max(rates)
        assert min(rates) in (rates[4], rates[5])


class TestTables34:
    def test_table3_structure(self):
        res = table34.run_table3(rows=32, row_elems=256,
                                 batch_sizes=[1024, 64])
        assert res.experiment_id == "table3"
        assert len(res.comparisons) == 2 * 4
        assert all(c.measured > 0 for c in res.comparisons)

    def test_table4_noncontig_slower(self):
        r3 = table34.run_table3(rows=32, row_elems=256, batch_sizes=[16])
        r4 = table34.run_table4(rows=32, row_elems=256, batch_sizes=[16])
        m3 = {c.label: c.measured for c in r3.comparisons}
        m4 = {c.label: c.measured for c in r4.comparisons}
        assert m4["16B read nosync"] > m3["16B read nosync"]


class TestTables567:
    def test_table5_monotone(self):
        res = table567.run_table5(rows=32, row_elems=256, factors=(1, 2, 4))
        vals = [c.measured for c in res.comparisons]
        assert vals == sorted(vals)

    def test_table6_interleaving_helps_replication(self):
        res = table567.run_table6(rows=32, row_elems=1024,
                                  page_sizes=[None, 16 << 10],
                                  replications=(0, 8))
        m = {c.label: c.measured for c in res.comparisons}
        assert m["page 16K repl 8"] < m["page none repl 8"]

    def test_table7_saturation(self):
        res = table567.run_table7(rows=64, row_elems=1024,
                                  page_sizes=[None], core_counts=(1, 2, 4))
        m = {c.label: c.measured for c in res.comparisons}
        assert m["page none cores 2"] < m["page none cores 1"]
        # beyond 2 cores: no big further gain
        assert m["page none cores 4"] > 0.5 * m["page none cores 2"]


class TestTable8:
    def test_reduced_rows(self):
        rows = [("cpu", 1, None, None, 0, 1.41, 1657.0),
                ("cpu", 24, None, None, 0, 21.61, 588.0),
                ("e150", 4, 2, 2, 1, None, None),
                ("e150 x 2", 8, 4, 2, 2, None, None)]
        res = table8.run(nx=1024, ny=64, iterations=10, rows=rows)
        assert len(res.comparisons) == 8
        text = res.table.render()
        assert "e150 x 2" in text

    def test_paper_scale_fidelity(self):
        """Full Table VIII via the models: every ratio within 1.6x."""
        res = table8.run()
        worst = res.worst_ratio()
        assert worst is not None and worst < 1.6
