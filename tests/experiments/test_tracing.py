"""Chrome-trace export tests."""

import json

import pytest

from repro.analysis.tracing import Tracer
from repro.arch.tensix import COMPUTE, DATA_MOVER_0, DATA_MOVER_1
from repro.core.grid import LaplaceProblem
from repro.core.jacobi_optimized import OptimizedJacobiRunner


@pytest.fixture
def traced_run(device_factory):
    dev = device_factory()
    dev.tracer = Tracer()
    OptimizedJacobiRunner(dev, LaplaceProblem(nx=32, ny=16)).run(
        3, read_back=False)
    return dev


class TestTracer:
    def test_records_busy_and_stall(self, traced_run):
        kinds = {e.kind for e in traced_run.tracer.events}
        assert kinds == {"busy", "stall"}

    def test_all_three_slots_appear(self, traced_run):
        slots = {e.slot for e in traced_run.tracer.events}
        assert slots == {DATA_MOVER_0, COMPUTE, DATA_MOVER_1}

    def test_busy_matches_core_accounting(self, traced_run):
        core = traced_run.core(0, 0)
        for slot in (DATA_MOVER_0, COMPUTE, DATA_MOVER_1):
            traced = traced_run.tracer.busy_time(core=(0, 0), slot=slot)
            assert traced == pytest.approx(core.busy_time[slot], rel=1e-9)

    def test_pipeline_overlap_visible(self, traced_run):
        """Reader and compute busy intervals overlap — the whole point of
        the CB pipeline."""
        ov = traced_run.tracer.overlap(DATA_MOVER_0, COMPUTE, (0, 0))
        assert ov > 0

    def test_chrome_json_roundtrip(self, traced_run, tmp_path):
        path = tmp_path / "run.trace.json"
        traced_run.tracer.save(str(path))
        data = json.loads(path.read_text())
        assert data["traceEvents"]
        ev = data["traceEvents"][0]
        assert ev["ph"] == "X" and "ts" in ev and "dur" in ev
        assert ev["pid"].startswith("core")

    def test_zero_duration_dropped(self):
        t = Tracer()
        t.record((0, 0), "dm0", "busy", 1.0, 1.0)
        assert t.events == []

    def test_stalls_optional(self):
        t = Tracer(record_stalls=False)
        t.record((0, 0), "dm0", "stall", 0.0, 1.0)
        t.record((0, 0), "dm0", "busy", 0.0, 1.0)
        assert len(t.events) == 1

    def test_no_tracer_no_overhead(self, device_factory):
        dev = device_factory()
        assert not hasattr(dev, "tracer") or dev.tracer is None
        res = OptimizedJacobiRunner(dev, LaplaceProblem(nx=32, ny=8)).run(
            2, read_back=False)
        assert res.kernel_time_s > 0
