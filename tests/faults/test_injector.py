"""Device-level injection: DRAM flips + ECC, NoC disturbances, hangs."""

import numpy as np
import pytest

from repro.analysis.resilience import FaultTrace
from repro.arch.noc import ReadJob
from repro.faults import DramBitFlip, FaultInjector, FaultPlan, NocFault


class TestDramBitFlips:
    def test_flip_corrupts_storage(self, device):
        bank = device.dram.bank(0)
        bank.write(0, np.zeros(64, dtype=np.uint8))
        bank.inject_bit_flip(5, 3)
        assert bank.read(0, 64)[5] == 1 << 3
        assert bank.bit_flips == 1

    def test_ecc_corrects_single_flip_on_read(self, device):
        bank = device.dram.bank(0)
        bank.ecc_enabled = True
        bank.write(0, np.full(64, 0xAB, dtype=np.uint8))
        bank.inject_bit_flip(10, 2)
        data = bank.read(0, 64)
        assert data[10] == 0xAB          # scrubbed before the copy
        assert bank.ecc_corrected == 1
        # and the correction is persistent
        assert bank.read(0, 64)[10] == 0xAB
        assert bank.ecc_corrected == 1

    def test_ecc_double_flip_same_word_uncorrectable(self, device):
        bank = device.dram.bank(0)
        bank.ecc_enabled = True
        bank.write(0, np.zeros(64, dtype=np.uint8))
        bank.inject_bit_flip(4, 0)       # both inside ECC word 0 (32 B)
        bank.inject_bit_flip(9, 1)
        data = bank.read(0, 64)
        assert bank.ecc_uncorrectable == 1
        assert bank.ecc_corrected == 0
        assert data[4] == 1 and data[9] == 2   # left corrupted

    def test_ecc_flips_in_distinct_words_both_corrected(self, device):
        bank = device.dram.bank(0)
        bank.ecc_enabled = True
        bank.write(0, np.zeros(128, dtype=np.uint8))
        bank.inject_bit_flip(4, 0)       # word 0
        bank.inject_bit_flip(40, 1)      # word 1
        data = bank.read(0, 128)
        assert bank.ecc_corrected == 2
        assert not data.any()

    def test_write_retires_flip_records(self, device):
        bank = device.dram.bank(0)
        bank.ecc_enabled = True
        bank.inject_bit_flip(4, 0)
        bank.write(0, np.zeros(32, dtype=np.uint8))   # overwrite
        assert not bank.read(0, 32).any()
        assert bank.ecc_corrected == 0   # nothing left to correct

    def test_double_flip_same_bit_cancels(self, device):
        bank = device.dram.bank(0)
        bank.ecc_enabled = True
        bank.write(0, np.zeros(32, dtype=np.uint8))
        bank.inject_bit_flip(4, 0)
        bank.inject_bit_flip(4, 0)       # flips back: data is correct again
        data = bank.read(0, 32)
        assert not data.any()
        assert bank.ecc_corrected == 0   # no record left to "correct"

    def test_flip_validation(self, device):
        bank = device.dram.bank(0)
        with pytest.raises(ValueError):
            bank.inject_bit_flip(0, 8)


class TestNocFaults:
    def _timed_read(self, device, noc, nbytes=1024):
        link = noc.new_link("t")
        t0 = device.sim.now
        ev = noc.read_burst(link, [ReadJob(bank_id=0, addr=0, size=nbytes)])
        device.sim.run(until=ev)
        return device.sim.now - t0

    def test_delay_stretches_completion(self, device):
        baseline = self._timed_read(device, device.noc0)
        device.noc0.inject_fault("delay", 1e-5)
        assert self._timed_read(device, device.noc0) == \
            pytest.approx(baseline + 1e-5)
        assert device.noc0.injected_delays == 1

    def test_drop_pays_latency_twice(self, device):
        baseline = self._timed_read(device, device.noc0)
        device.noc0.inject_fault("drop", 0.0)
        retrans = self._timed_read(device, device.noc0)
        assert retrans == pytest.approx(
            baseline + device.costs.read_latency)
        assert device.noc0.injected_drops == 1

    def test_fault_is_one_shot(self, device):
        baseline = self._timed_read(device, device.noc0)
        device.noc0.inject_fault("delay", 1e-5)
        self._timed_read(device, device.noc0)
        assert self._timed_read(device, device.noc0) == \
            pytest.approx(baseline)

    def test_unknown_kind_rejected(self, device):
        with pytest.raises(ValueError):
            device.noc0.inject_fault("corrupt", 0.0)


class TestInjectorScheduling:
    def test_timed_faults_apply_at_their_times(self, device):
        plan = FaultPlan(seed=0, dram=(
            DramBitFlip(t=1e-5, bank_id=0, addr=100, bit=0),))
        trace = FaultTrace()
        FaultInjector(device, plan, trace=trace).install()
        device.sim.run(until=2e-5)
        assert device.dram.bank(0).bit_flips == 1
        [ev] = trace.events
        assert ev.kind == "dram.bitflip"
        assert ev.t == pytest.approx(1e-5)

    def test_noc_arming_and_consumption_traced(self, device):
        plan = FaultPlan(seed=0, noc=(
            NocFault(t=0.0, noc_id=0, kind="delay", delay_s=1e-6),))
        trace = FaultTrace()
        FaultInjector(device, plan, trace=trace).install()
        device.sim.run(until=1e-9)
        link = device.noc0.new_link("t")
        ev = device.noc0.read_burst(link, [ReadJob(0, 0, 256)])
        device.sim.run(until=ev)
        actions = [e.action for e in trace.events]
        assert actions == ["armed", "consumed"]

    def test_install_twice_rejected(self, device):
        inj = FaultInjector(device, FaultPlan(seed=0))
        inj.install()
        with pytest.raises(RuntimeError):
            inj.install()

    def test_uninstall_detaches(self, device):
        inj = FaultInjector(device, FaultPlan(seed=0)).install()
        assert device.fault_injector is inj
        inj.uninstall()
        assert device.fault_injector is None
