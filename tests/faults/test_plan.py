"""FaultPlan generation: seeded, deterministic, replayable."""

import pytest

from repro.faults import (CoreFailure, FaultPlan, PcieCorruption,
                          SolverBitFlip)


class TestGeneration:
    def test_same_seed_same_plan(self):
        kwargs = dict(n_dram_flips=5, n_noc_faults=3, n_hangs=2, n_pcie=2,
                      n_solver_flips=4, n_core_failures=2, cores=(3, 3))
        assert FaultPlan.generate(42, **kwargs) == \
            FaultPlan.generate(42, **kwargs)

    def test_different_seeds_differ(self):
        a = FaultPlan.generate(1, n_dram_flips=10)
        b = FaultPlan.generate(2, n_dram_flips=10)
        assert a.dram != b.dram

    def test_counts(self):
        plan = FaultPlan.generate(0, n_dram_flips=4, n_noc_faults=3,
                                  n_hangs=2, n_solver_flips=5,
                                  n_core_failures=2, cores=(2, 2))
        assert len(plan.dram) == 4
        assert len(plan.noc) == 3
        assert len(plan.hangs) == 2
        assert len(plan.solver) == 5
        assert len(plan.core_failures) == 2

    def test_core_failures_never_kill_every_core(self):
        plan = FaultPlan.generate(3, n_core_failures=10, cores=(2, 2))
        assert len(plan.core_failures) <= 3
        assert len({(f.iy, f.ix) for f in plan.core_failures}) == \
            len(plan.core_failures)

    def test_times_within_horizon(self):
        plan = FaultPlan.generate(9, n_dram_flips=20, horizon_s=1e-3)
        assert all(0.0 <= f.t <= 1e-3 for f in plan.dram)

    def test_solver_flips_inside_interior(self):
        plan = FaultPlan.generate(5, n_solver_flips=20, interior=(16, 48),
                                  iterations=10)
        for f in plan.solver:
            assert 0 <= f.row < 16
            assert 0 <= f.col < 48
            assert 0 <= f.iteration < 10

    def test_plan_is_frozen(self):
        plan = FaultPlan.generate(0)
        with pytest.raises(AttributeError):
            plan.seed = 1  # type: ignore[misc]

    def test_to_dict_round_trips_fields(self):
        plan = FaultPlan(seed=1,
                         pcie=(PcieCorruption(index=2, byte=7, bit=3),),
                         solver=(SolverBitFlip(iteration=4, row=1, col=2,
                                               bit=14),),
                         core_failures=(CoreFailure(iteration=9, iy=0,
                                                    ix=1),))
        d = plan.to_dict()
        assert d["seed"] == 1
        assert d["pcie"] == [{"index": 2, "byte": 7, "bit": 3}]
        assert d["solver"][0]["iteration"] == 4
        assert d["core_failures"][0] == {"iteration": 9, "iy": 0, "ix": 1}

    def test_describe_mentions_counts(self):
        plan = FaultPlan.generate(0, n_dram_flips=2, n_solver_flips=1)
        text = plan.describe()
        assert "2 DRAM flip(s)" in text
        assert "1 solver flip(s)" in text
        assert plan.n_faults == 3
