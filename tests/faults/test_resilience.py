"""Resilient solver: SDC detection, checkpoint/restart, degraded mode."""

import numpy as np
import pytest

from repro.analysis.resilience import FaultTrace
from repro.core.decomposition import remap_failed, split_domain
from repro.core.grid import LaplaceProblem
from repro.core.solver import ResilienceConfig, solve_resilient
from repro.cpu.jacobi import jacobi_solve_bf16, residual_f32
from repro.faults import (CampaignConfig, CoreFailure, FaultPlan,
                          SolverBitFlip, run_campaign)


@pytest.fixture
def problem():
    return LaplaceProblem(nx=32, ny=32)


class TestFaultFree:
    def test_matches_plain_bf16_sweep(self, problem):
        res = solve_resilient(problem, 20)
        oracle = jacobi_solve_bf16(problem.initial_grid_bf16(), 20)
        np.testing.assert_array_equal(
            res.grid_f32.view(np.uint32) >> 16, oracle)
        assert res.restarts == 0
        assert res.executed_sweeps == 20
        assert res.time_s > 0

    def test_residual_decreases(self, problem):
        early = solve_resilient(problem, 5)
        late = solve_resilient(problem, 80)
        assert late.residual < early.residual


class TestSdcDetection:
    def test_flip_detected_and_rolled_back(self, problem):
        plan = FaultPlan(seed=0, solver=(
            SolverBitFlip(iteration=10, row=5, col=5, bit=14),))
        res = solve_resilient(problem, 30, faults=plan,
                              config=ResilienceConfig(checkpoint_every=8))
        assert res.detected_sdc == 1
        assert res.restarts == 1
        # replayed sweeps: rolled back from iteration 11 to checkpoint 8
        assert res.executed_sweeps == 30 + (11 - 8)

    def test_final_answer_identical_to_fault_free(self, problem):
        """Rollback + clean replay must erase the corruption entirely."""
        plan = FaultPlan(seed=0, solver=(
            SolverBitFlip(iteration=3, row=1, col=1, bit=14),
            SolverBitFlip(iteration=17, row=8, col=20, bit=14),))
        faulty = solve_resilient(problem, 40, faults=plan)
        clean = solve_resilient(problem, 40)
        np.testing.assert_array_equal(faulty.grid_f32, clean.grid_f32)
        assert faulty.detected_sdc == 2

    def test_converges_under_faults(self, problem):
        plan = FaultPlan(seed=0, solver=tuple(
            SolverBitFlip(iteration=i * 11, row=3 + i, col=7, bit=14)
            for i in range(4)))
        res = solve_resilient(problem, 120, faults=plan,
                              config=ResilienceConfig(max_restarts=10))
        assert res.detected_sdc == 4
        assert res.residual < 5e-3          # converging despite the strikes
        lo, hi = problem.boundary_extrema()
        assert res.interior.min() >= lo - 1e-6
        assert res.interior.max() <= hi + 1e-6

    def test_every_fault_recorded_in_trace(self, problem):
        plan = FaultPlan(seed=0, solver=(
            SolverBitFlip(iteration=5, row=2, col=2, bit=14),))
        trace = FaultTrace()
        solve_resilient(problem, 20, faults=plan, trace=trace)
        assert trace.count("solver.bitflip", "injected") == 1
        assert trace.count("solver.sdc", "detected") == 1
        assert trace.count("solver.sdc", "rolled-back") == 1

    def test_gives_up_after_max_restarts(self, problem):
        # More detectable strikes than the restart budget tolerates.
        plan = FaultPlan(seed=0, solver=tuple(
            SolverBitFlip(iteration=i, row=2, col=2, bit=14)
            for i in range(5)))
        with pytest.raises(RuntimeError, match="restarts"):
            solve_resilient(problem, 30, faults=plan,
                            config=ResilienceConfig(max_restarts=2))

    def test_flip_outside_interior_rejected(self, problem):
        plan = FaultPlan(seed=0, solver=(
            SolverBitFlip(iteration=0, row=99, col=0, bit=14),))
        with pytest.raises(ValueError, match="outside"):
            solve_resilient(problem, 5, faults=plan)


class TestDegradedMode:
    def test_core_failure_slows_but_does_not_corrupt(self, problem):
        plan = FaultPlan(seed=0, core_failures=(
            CoreFailure(iteration=10, iy=0, ix=0),))
        degraded = solve_resilient(problem, 40, cores=(2, 2), faults=plan)
        clean = solve_resilient(problem, 40, cores=(2, 2))
        np.testing.assert_array_equal(degraded.grid_f32, clean.grid_f32)
        assert degraded.failed_cores == ((0, 0),)
        assert degraded.degraded_factor == pytest.approx(2.0)
        assert degraded.time_s > clean.time_s
        assert degraded.weighted_sweeps == pytest.approx(10 + 30 * 2.0)

    def test_all_cores_failing_raises(self, problem):
        plan = FaultPlan(seed=0, core_failures=(
            CoreFailure(iteration=0, iy=0, ix=0),
            CoreFailure(iteration=1, iy=0, ix=1),))
        with pytest.raises(ValueError, match="surviv"):
            solve_resilient(problem, 10, cores=(1, 2), faults=plan)


class TestRemapFailed:
    def test_deterministic_least_loaded(self):
        grid = split_domain(64, 64, 2, 2)
        a = remap_failed(grid, {(0, 0)})
        b = remap_failed(grid, {(0, 0)})
        assert a == b
        # Nearest survivors are (0,1) and (1,0) at distance 1; equal load
        # breaks the tie by coordinate.
        assert a == {(0, 0): (0, 1)}

    def test_spreads_load_over_survivors(self):
        grid = split_domain(64, 64, 2, 2)
        assignment = remap_failed(grid, {(0, 0), (1, 1)})
        assert set(assignment.values()) == {(0, 1), (1, 0)}

    def test_unknown_coord_rejected(self):
        grid = split_domain(64, 64, 2, 2)
        with pytest.raises(ValueError, match="unknown"):
            remap_failed(grid, {(5, 5)})

    def test_no_survivors_rejected(self):
        grid = split_domain(32, 32, 1, 1)
        with pytest.raises(ValueError, match="surviv"):
            remap_failed(grid, {(0, 0)})


class TestCampaign:
    def test_replays_byte_identical(self):
        cfg = CampaignConfig(seed=11, nx=32, ny=32, iterations=24,
                             checkpoint_every=6)
        a = run_campaign(cfg)
        b = run_campaign(cfg)
        assert a.trace.to_text() == b.trace.to_text()
        assert a.outcome == b.outcome

    def test_report_records_detections_and_corrections(self):
        cfg = CampaignConfig(seed=3, nx=32, ny=32, iterations=24,
                             dram_flips=2, solver_flips=2, core_failures=1,
                             checkpoint_every=6)
        report = run_campaign(cfg)
        trace = report.trace
        assert trace.count("dram.bitflip", "injected") == 2
        assert trace.count("dram.bitflip", "corrected") \
            + trace.count("dram.bitflip", "uncorrectable") >= 1
        assert trace.count("solver.bitflip", "injected") == 2
        assert trace.count("solver.sdc", "detected") == 2
        assert trace.count("core.failure", "remapped") == 1
        rendered = report.render()
        assert "solver residual" in rendered
        assert "dram flips corrected by ECC" in rendered

    def test_trace_write_is_canonical(self, tmp_path):
        cfg = CampaignConfig(seed=5, nx=32, ny=32, iterations=16)
        report = run_campaign(cfg)
        out = tmp_path / "trace.txt"
        report.trace.write(str(out))
        assert out.read_text() == report.trace.to_text()
