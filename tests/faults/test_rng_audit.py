"""Seeded-RNG audit for the fault-injection plane.

Fault plans, the injector and campaigns drive the byte-identical
replay checks (``repro faults --replay-check``, the CI chaos-smoke
job), so ``src/repro/faults/`` falls under the same contract as
``src/repro/serve/``: no wall-clock imports, no process-global RNG —
only explicit ``random.Random(seed)``.  The shared AST walker lives in
``tests/rng_audit.py``.
"""

import pytest

import repro.faults
from tests.rng_audit import audit_source, package_sources

SOURCES = package_sources(repro.faults)


def test_faults_sources_found():
    names = {p.name for p in SOURCES}
    assert {"plan.py", "injector.py", "campaign.py"} <= names


@pytest.mark.parametrize("source", SOURCES, ids=lambda p: p.name)
def test_no_wall_clock_or_global_rng(source):
    assert audit_source(source) == []
