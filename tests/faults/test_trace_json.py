"""FaultTrace JSON export (schema repro-faults/1): byte-stable
round-trips.

The serialized form must carry everything the canonical text form does
— dump → load → re-dump has to be byte-identical, both in memory and
through files — so a chaos campaign's trace can be archived and
replay-diffed later without the producing process.
"""

import json

import pytest

from repro.analysis.resilience import FAULTS_SCHEMA, FaultTrace
from repro.faults import CampaignConfig, run_campaign


def _sample_trace() -> FaultTrace:
    t = FaultTrace()
    t.record(0.0, "dram.bitflip", "bank0@0x10.bit3", "injected")
    t.record(1.5e-5, "noc.delay", "noc1", "consumed", "extra=2e-06")
    t.record(-1.0, "solver.sdc", "iter17", "detected", "range-check")
    t.record(2.0e-5, "kernel.hang", "core3,4.trisc0", "injected", "")
    return t


class TestSchema:
    def test_tagged_and_counted(self):
        doc = _sample_trace().to_json()
        assert doc["schema"] == FAULTS_SCHEMA == "repro-faults/1"
        assert doc["n_events"] == 4
        assert len(doc["events"]) == 4

    def test_rows_are_fixed_order(self):
        doc = _sample_trace().to_json()
        t, kind, where, action, detail = doc["events"][1]
        assert (t, kind, where, action, detail) == (
            1.5e-5, "noc.delay", "noc1", "consumed", "extra=2e-06")

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            FaultTrace.from_json({"schema": "other/1", "events": []})

    def test_inconsistent_count_rejected(self):
        doc = _sample_trace().to_json()
        doc["n_events"] = 99
        with pytest.raises(ValueError, match="inconsistent"):
            FaultTrace.from_json(doc)


class TestRoundTrip:
    def test_dump_load_redump_byte_identical(self):
        trace = _sample_trace()
        text = trace.to_json_text()
        again = FaultTrace.from_json(json.loads(text))
        assert again.to_json_text() == text
        assert again.to_text() == trace.to_text()

    def test_file_round_trip(self, tmp_path):
        trace = _sample_trace()
        path = tmp_path / "trace.json"
        trace.write_json(str(path))
        loaded = FaultTrace.read_json(str(path))
        assert loaded.to_json_text() == path.read_text()
        assert loaded.to_json_text() == trace.to_json_text()

    def test_empty_trace_round_trips(self):
        trace = FaultTrace()
        again = FaultTrace.from_json(json.loads(trace.to_json_text()))
        assert len(again) == 0
        assert again.to_json_text() == trace.to_json_text()

    def test_campaign_trace_round_trips(self, tmp_path):
        """A real campaign's trace survives the archive format intact."""
        report = run_campaign(CampaignConfig(seed=5, iterations=16))
        assert len(report.trace) > 0
        path = tmp_path / "campaign.json"
        report.trace.write_json(str(path))
        loaded = FaultTrace.read_json(str(path))
        assert loaded.to_json_text() == report.trace.to_json_text()
        assert loaded.to_text() == report.trace.to_text()
