"""The resilient host runtime: Finish watchdog + PCIe retry path."""

import numpy as np
import pytest

from repro.faults import FaultPlan, FaultInjector, PcieCorruption, run_hang_demo
from repro.ttmetal import create_buffer
from repro.ttmetal.host import (DeviceHangError, EnqueueProgram,
                                EnqueueReadBuffer, EnqueueWriteBuffer, Finish,
                                PcieTransferError, CreateKernel, Program)


def _spin_kernel(ctx):
    """A compute-slot kernel that just burns deterministic cycles."""
    for _ in range(ctx.arg("steps")):
        yield from ctx._elapse(1e-6)


def _two_core_program(device, steps=20):
    program = Program(device)
    for coord in ((0, 0), (1, 0)):
        CreateKernel(program, _spin_kernel, device.core(*coord), "compute",
                     args={"steps": steps})
    return program


class TestWatchdog:
    def test_healthy_program_unaffected_by_timeout(self, device):
        program = _two_core_program(device)
        handle = EnqueueProgram(device, program)
        elapsed = Finish(device, timeout_s=1.0)
        assert elapsed == pytest.approx(20e-6)
        assert handle.t_end is not None
        assert device._pending_programs == []

    def test_hang_raises_device_hang_error_naming_core(self, device):
        device.core(0, 0).inject_hang("compute")
        EnqueueProgram(device, _two_core_program(device))
        with pytest.raises(DeviceHangError) as exc_info:
            Finish(device, timeout_s=1e-4)
        err = exc_info.value
        assert [s.core for s in err.stalls] == [(0, 0)]
        assert err.stalls[0].slot == "compute"
        assert "hang-injected" in err.stalls[0].waiting_on
        assert "(0, 0)" in str(err)
        assert err.timeout_s == pytest.approx(1e-4)

    def test_watchdog_fires_at_the_deadline(self, device):
        device.core(0, 0).inject_hang("compute")
        EnqueueProgram(device, _two_core_program(device))
        with pytest.raises(DeviceHangError):
            Finish(device, timeout_s=5e-5)
        assert device.sim.now == pytest.approx(5e-5)

    def test_device_usable_after_hang(self, device):
        """The watchdog must interrupt stranded kernels and clear state so
        a fresh program can run on the same device."""
        device.core(0, 0).inject_hang("compute")
        EnqueueProgram(device, _two_core_program(device))
        with pytest.raises(DeviceHangError):
            Finish(device, timeout_s=1e-4)
        assert device._pending_programs == []
        assert device.sim.stranded_processes() == []
        # a healthy core can run a new program afterwards
        program = Program(device)
        CreateKernel(program, _spin_kernel, device.core(2, 0), "compute",
                     args={"steps": 5})
        EnqueueProgram(device, program)
        assert Finish(device, timeout_s=1.0) == pytest.approx(5e-6)

    def test_whole_core_failure_strands_every_slot(self, device):
        device.core(0, 0).fail_core()
        assert device.core(0, 0).hung_slots == {"dm0", "dm1", "compute"}

    def test_finish_without_timeout_still_deadlocks(self, device):
        """The default path keeps the old semantics: no watchdog."""
        device.core(0, 0).inject_hang("compute")
        EnqueueProgram(device, _two_core_program(device))
        with pytest.raises(Exception, match="deadlock"):
            Finish(device)

    def test_hang_demo_names_the_wedged_core(self):
        err = run_hang_demo(seed=4, timeout_s=1e-3)
        assert isinstance(err, DeviceHangError)
        assert len(err.stalls) == 1
        assert err.stalls[0].core == (0, 0)
        assert err.stalls[0].slot == "dm0"


class TestCircularBufferWedge:
    def test_wedged_cb_blocks_then_unwedges(self, device):
        core = device.core(0, 0)
        cb = core.create_cb(0, page_size=64, n_pages=2)
        cb.wedge()
        ev = cb.reserve_back(1)
        device.sim.run()
        assert not ev.triggered          # wedged: nothing drains
        cb.unwedge()
        device.sim.run()
        assert ev.triggered


class TestPcieRetry:
    def _install(self, device, indices):
        plan = FaultPlan(seed=0, pcie=tuple(
            PcieCorruption(index=i, byte=13, bit=2) for i in indices))
        inj = FaultInjector(device, plan)
        inj.install()
        return inj

    def test_write_retries_until_clean(self, device):
        inj = self._install(device, [0])
        data = np.arange(256, dtype=np.uint8)
        buf = create_buffer(device, data.nbytes)
        EnqueueWriteBuffer(device, buf, data)
        out = EnqueueReadBuffer(device, buf)
        np.testing.assert_array_equal(out, data)
        assert inj.trace.count("pcie.corruption", "injected") == 1
        assert inj.trace.count("pcie.corruption", "retried") == 1

    def test_retry_costs_simulated_time(self, device_factory):
        clean_dev = device_factory()
        data = np.arange(256, dtype=np.uint8)
        buf = create_buffer(clean_dev, data.nbytes)
        t_clean = EnqueueWriteBuffer(clean_dev, buf, data)

        faulty_dev = device_factory()
        self._install(faulty_dev, [0])
        buf2 = create_buffer(faulty_dev, data.nbytes)
        t_faulty = EnqueueWriteBuffer(faulty_dev, buf2, data)
        assert t_faulty > 2 * t_clean    # second attempt + backoff

    def test_read_retries_until_clean(self, device):
        data = np.arange(256, dtype=np.uint8)
        buf = create_buffer(device, data.nbytes)
        EnqueueWriteBuffer(device, buf, data)
        inj = self._install(device, [0])
        out = EnqueueReadBuffer(device, buf)
        np.testing.assert_array_equal(out, data)
        assert inj.trace.count("pcie.corruption", "retried") == 1

    def test_persistent_corruption_exhausts_retries(self, device):
        self._install(device, range(16))   # every attempt corrupted
        data = np.zeros(64, dtype=np.uint8)
        buf = create_buffer(device, data.nbytes)
        with pytest.raises(PcieTransferError, match="integrity"):
            EnqueueWriteBuffer(device, buf, data)

    def test_non_blocking_write_keeps_corruption(self, device):
        """Without blocking there is no CRC check: corruption persists."""
        self._install(device, [0])
        data = np.zeros(64, dtype=np.uint8)
        buf = create_buffer(device, data.nbytes)
        EnqueueWriteBuffer(device, buf, data, blocking=False)
        device.sim.run()
        out = buf.read_host(0, 64)
        assert out[13] == 1 << 2         # the flipped byte landed
