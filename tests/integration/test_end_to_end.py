"""End-to-end integration: the paper's narrative at test scale.

Each test reproduces one *claim* of the paper on a reduced problem, going
through the full stack (host API → DES → kernels → DRAM).
"""

import numpy as np
import pytest

from repro.core.grid import LaplaceProblem
from repro.core.solver import JacobiSolver
from repro.cpu.jacobi import jacobi_solve_bf16, solve_direct
from repro.dtypes.bf16 import bits_to_f32


class TestNarrative:
    def test_optimisation_journey(self, device_factory):
        """Section IV → VI: each generation is faster, same answer."""
        problem = LaplaceProblem(nx=64, ny=64)
        results = {}
        for variant in ("initial", "write_opt", "double_buffered",
                        "optimized"):
            solver = JacobiSolver(backend="e150", variant=variant)
            results[variant] = solver.solve(problem, 100, sim_iterations=2)
        g = {k: v.gpts for k, v in results.items()}
        assert g["optimized"] > g["double_buffered"] > g["write_opt"] \
            >= g["initial"]
        # the paper's headline: the redesign is a large multiple (163x at
        # 512x512; >4x even at this tiny size where fixed costs dominate)
        assert g["optimized"] / g["initial"] > 4

    def test_all_engines_agree_on_physics(self):
        """CPU FP32, device BF16 DES, and the model all converge to the
        same diffusion field (within BF16 tolerance)."""
        problem = LaplaceProblem(nx=32, ny=32, left=1.0)
        iters = 150
        cpu = JacobiSolver(backend="cpu").solve(problem, iters)
        des = JacobiSolver(backend="e150").solve(problem, iters)
        mdl = JacobiSolver(backend="e150-model", cores=(2, 2)).solve(
            problem, iters)
        assert np.array_equal(des.grid_f32, mdl.grid_f32)
        # BF16 drift vs FP32 accumulates with iterations; ~0.06 at 150
        assert np.abs(des.grid_f32 - cpu.grid_f32).max() < 0.1

    def test_device_solution_approaches_truth(self):
        """The simulated card really solves Laplace's equation — up to the
        BF16 rounding fixed point.

        A notable reproduction finding: BF16 Jacobi *stalls* once the
        per-iteration increments fall below half a BF16 ULP, well before
        FP32 convergence (max error ~0.17 on this problem, vs <1e-3 for
        FP32 at the same iteration count).  The paper runs the e150 in
        BF16 without an accuracy validation; this quantifies the cost of
        its "BF16 vs FP32" caveat.
        """
        problem = LaplaceProblem(nx=32, ny=32, left=1.0)
        exact = solve_direct(problem.initial_grid_f32())
        res = JacobiSolver(backend="e150").solve(problem, 800)
        err = np.abs(res.grid_f32[1:-1, 1:-1]
                     - exact[1:-1, 1:-1]).max()
        assert err < 0.25  # the BF16 fixed-point plateau
        # and the field is qualitatively right: monotone decay to the right
        mid = res.grid_f32[16, 1:-1]
        assert mid[0] > mid[10] > mid[25] >= 0.0

    def test_bf16_vs_fp32_precision_gap(self):
        """The paper's caveat: the e150 runs BF16 vs the CPU's FP32; the
        converged fields differ by the BF16 resolution."""
        problem = LaplaceProblem(nx=32, ny=32, left=1.0)
        cpu = JacobiSolver(backend="cpu").solve(problem, 500)
        dev = JacobiSolver(backend="e150").solve(problem, 500)
        gap = np.abs(cpu.grid_f32 - dev.grid_f32).max()
        assert 0 < gap < 0.3

    def test_energy_story_at_scale(self):
        """Full card ≈ CPU speed at ~5x less energy (Table VIII)."""
        problem = LaplaceProblem(nx=9216, ny=1024)
        from repro.perfmodel.cpumodel import XeonModel
        xeon = XeonModel()
        cpu_time = xeon.solve_time_s(9216 * 1024, 5000, 24)
        cpu_energy = xeon.energy_j(9216 * 1024, 5000, 24)
        card = JacobiSolver(backend="e150-model", cores=(12, 9)).solve(
            problem, 5000, compute_answer=False)
        assert card.time_s == pytest.approx(cpu_time, rel=0.25)
        assert cpu_energy / card.energy_j > 4.0

    def test_four_cards_beat_cpu_fourfold(self):
        problem = LaplaceProblem(nx=9216, ny=1024)
        four = JacobiSolver(backend="e150-model", cores=(48, 9),
                            n_cards=4).solve(problem, 5000,
                                             compute_answer=False)
        from repro.perfmodel.cpumodel import XeonModel
        cpu_gpts = XeonModel().throughput_pts(24) / 1e9
        assert four.gpts / cpu_gpts > 3.0


class TestRobustness:
    def test_repeated_solves_on_fresh_devices_identical(self, device_factory):
        problem = LaplaceProblem(nx=32, ny=32)
        a = JacobiSolver(backend="e150").solve(problem, 5)
        b = JacobiSolver(backend="e150").solve(problem, 5)
        assert np.array_equal(a.grid_f32, b.grid_f32)
        assert a.time_s == b.time_s

    def test_asymmetric_boundaries(self):
        problem = LaplaceProblem(nx=32, ny=64, left=2.0, right=-1.0,
                                 top=0.25, bottom=0.75, initial=0.1)
        res = JacobiSolver(backend="e150").solve(problem, 20)
        want = bits_to_f32(jacobi_solve_bf16(
            problem.initial_grid_bf16(), 20))
        assert np.array_equal(res.grid_f32, want)

    def test_zero_initial_guess_converges_from_one(self):
        """The paper: initial guess 'often zero or one'."""
        for init in (0.0, 1.0):
            problem = LaplaceProblem(nx=32, ny=32, left=1.0, initial=init)
            res = JacobiSolver(backend="e150").solve(problem, 400)
            exact = solve_direct(problem.initial_grid_f32())
            # both starts reach the same BF16 plateau regime
            assert np.abs(res.grid_f32[1:-1, 1:-1]
                          - exact[1:-1, 1:-1]).max() < 0.35
