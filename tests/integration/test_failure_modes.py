"""Failure injection: the machine's limits fail loudly and correctly."""

import numpy as np
import pytest

from repro.arch.dram import AccessFault
from repro.arch.sram import SramExhausted
from repro.arch.tensix import COMPUTE, DATA_MOVER_0, DATA_MOVER_1
from repro.sim import SimulationError, Simulator
from repro.sim.resources import Semaphore
from repro.ttmetal import (
    CreateCircularBuffer,
    CreateKernel,
    EnqueueProgram,
    Finish,
    Program,
    create_buffer,
)


class TestCapacityLimits:
    def test_l1_oversubscription_by_cbs(self, device):
        """Configuring more CB pages than 1 MB of L1 fails at creation
        (the real tt-metal failure mode)."""
        core = device.core(0, 0)
        with pytest.raises(SramExhausted):
            for cb_id in range(40):
                core.create_cb(cb_id, 32 * 1024, 1)

    def test_dram_bank_exhaustion(self, device):
        with pytest.raises(AccessFault, match="exhausted"):
            for _ in range(20):
                create_buffer(device, 256 * 1024, bank_id=0)

    def test_interleaved_exhaustion(self, device):
        # device fixture banks are 1 MiB each (8 MiB total)
        with pytest.raises(AccessFault):
            create_buffer(device, 16 << 20, interleaved=True,
                          page_size=16 << 10)

    def test_kernel_l1_allocation_failure_surfaces(self, device):
        def greedy(ctx):
            yield ctx.sim.timeout(0)
            ctx.core.sram.allocate(2 << 20)
        prog = Program(device)
        CreateKernel(prog, greedy, device.core(0, 0), DATA_MOVER_0)
        EnqueueProgram(device, prog)
        with pytest.raises(SimulationError, match="crashed"):
            Finish(device)


class TestDeadlocks:
    def test_unbalanced_cb_deadlock_detected(self, device):
        """A consumer waiting for pages nobody pushes is reported as a
        deadlock, not a hang."""
        def consumer(ctx):
            yield from ctx.cb_wait_front(0, 1)
        prog = Program(device)
        CreateCircularBuffer(prog, device.core(0, 0), 0, 64, 2)
        CreateKernel(prog, consumer, device.core(0, 0), DATA_MOVER_0)
        # lint="off": P202 catches this statically; here we want the
        # runtime deadlock detector to see it
        EnqueueProgram(device, prog, lint="off")
        with pytest.raises(SimulationError, match="deadlock"):
            Finish(device)

    def test_semaphore_deadlock_detected(self, device):
        def waiter(ctx):
            yield from ctx.semaphore_wait(0, 5)
        prog = Program(device)
        from repro.ttmetal import CreateSemaphore
        CreateSemaphore(prog, device.core(0, 0), 0, 0)
        CreateKernel(prog, waiter, device.core(0, 0), DATA_MOVER_0)
        EnqueueProgram(device, prog)
        with pytest.raises(SimulationError, match="deadlock"):
            Finish(device)

    def test_cross_core_deadlock_detected(self, device):
        """Two cores each waiting on the other's semaphore."""
        a = Semaphore(device.sim, 0, name="a")
        b = Semaphore(device.sim, 0, name="b")

        def k1(ctx):
            yield from ctx.semaphore_wait(a, 1)
            yield from ctx.semaphore_inc(b, 1)

        def k2(ctx):
            yield from ctx.semaphore_wait(b, 1)
            yield from ctx.semaphore_inc(a, 1)
        prog = Program(device)
        CreateKernel(prog, k1, device.core(0, 0), DATA_MOVER_0)
        CreateKernel(prog, k2, device.core(1, 0), DATA_MOVER_0)
        # lint="off": R305 catches this statically; here we want the
        # runtime deadlock detector to see it
        EnqueueProgram(device, prog, lint="off")
        with pytest.raises(SimulationError, match="deadlock"):
            Finish(device)


class TestKernelCrashes:
    def test_exception_in_kernel_names_the_core(self, device):
        def bad(ctx):
            yield ctx.sim.timeout(1e-9)
            raise RuntimeError("kernel bug")
        prog = Program(device)
        CreateKernel(prog, bad, device.core(2, 3), DATA_MOVER_1)
        EnqueueProgram(device, prog)
        with pytest.raises(SimulationError, match=r"\(2, 3\)"):
            Finish(device)

    def test_cb_protocol_violation_surfaces(self, device):
        def bad(ctx):
            yield ctx.sim.timeout(0)
            ctx._cb(0).push_back(1)  # push without reserve
        prog = Program(device)
        CreateCircularBuffer(prog, device.core(0, 0), 0, 64, 2)
        CreateKernel(prog, bad, device.core(0, 0), DATA_MOVER_0)
        EnqueueProgram(device, prog)
        with pytest.raises(SimulationError) as ei:
            Finish(device)
        assert "reserve" in str(ei.value.__cause__)

    def test_out_of_range_dram_read_surfaces(self, device):
        buf = create_buffer(device, 64, bank_id=0)

        def bad(ctx):
            l1 = ctx.core.sram.allocate(256)
            yield from ctx.noc_read_buffer(buf, 0, l1, 256)  # beyond buffer
        prog = Program(device)
        CreateKernel(prog, bad, device.core(0, 0), DATA_MOVER_0)
        EnqueueProgram(device, prog)
        with pytest.raises(SimulationError):
            Finish(device)


class TestSemaphoreSemantics:
    """The broadcast-watcher / FIFO-acquirer split (a real bug we hit:
    a high-threshold watcher must not block lower-threshold ones)."""

    def test_watchers_fire_out_of_order(self, sim):
        sem = Semaphore(sim, 0)
        order = []

        def w(name, threshold):
            yield sem.wait_at_least(threshold)
            order.append(name)
        sim.process(w("high", 5))
        sim.process(w("low", 1))

        def releaser():
            yield sim.timeout(1)
            sem.release(1)    # low fires now, despite high queued first
            yield sim.timeout(1)
            sem.release(4)
        sim.process(releaser())
        sim.run()
        assert order == ["low", "high"]

    def test_acquirers_remain_fifo(self, sim):
        sem = Semaphore(sim, 0)
        order = []

        def a(name, n):
            yield sem.acquire(n)
            order.append(name)
        sim.process(a("big", 3))
        sim.process(a("small", 1))
        sem.release(4)
        sim.run()
        assert order == ["big", "small"]

    def test_watcher_does_not_consume(self, sim):
        sem = Semaphore(sim, 0)

        def w():
            yield sem.wait_at_least(2)

        def a():
            yield sem.acquire(2)
            return sem.value
        sim.process(w())
        p = sim.process(a())
        sem.release(2)
        assert sim.run(until=p) == 0  # acquire got both units
