"""Multi-card DES integration: two cards, real kernels, combined answer.

The Tier-2 model handles Table VIII's multi-card rows; this test drives
the *actual kernels* on a two-card :class:`Cluster` (each card a full
DES) and checks the stitched result equals the functional multi-card
reference — stale inter-card halos and all.
"""

import numpy as np
import pytest

from repro.arch.cluster import Cluster
from repro.core.grid import LaplaceProblem
from repro.core.jacobi_optimized import OptimizedJacobiRunner
from repro.core.multicore import run_multicard_functional
from repro.cpu.jacobi import jacobi_solve_bf16


def _run_two_card_jacobi(problem: LaplaceProblem, iterations: int):
    """Split the domain in Y across two cards; no inter-card halos.

    Each card solves its block with frozen cut halos — exactly the
    paper's multi-card setup — using ``initial_grid`` to hand the card
    its slice of the global state.
    """
    cluster = Cluster(2, dram_bank_capacity=1 << 20)
    half = problem.ny // 2
    grid = problem.initial_grid_bf16()
    outputs = []
    for i, card in enumerate(cluster):
        block = grid[i * half:(i + 1) * half + 2, :]
        sub = LaplaceProblem(nx=problem.nx, ny=half)
        res = OptimizedJacobiRunner(card, sub).run(
            iterations, initial_grid=block)
        outputs.append(res.grid_bits)
    stitched = grid.copy()
    for i, out in enumerate(outputs):
        stitched[i * half + 1:(i + 1) * half + 1, 1:-1] = out[1:-1, 1:-1]
    return cluster, stitched


class TestTwoCardDes:
    def test_matches_functional_multicard_reference(self):
        problem = LaplaceProblem(nx=32, ny=16, top=1.0)
        iterations = 6
        cluster, stitched = _run_two_card_jacobi(problem, iterations)
        want = run_multicard_functional(problem.initial_grid_bf16(),
                                        iterations, 2)
        assert np.array_equal(stitched, want)

    def test_deviates_from_single_card_truth(self):
        """...and, like the paper's runs, it is NOT the true answer."""
        problem = LaplaceProblem(nx=32, ny=16, top=1.0)
        iterations = 10
        _, stitched = _run_two_card_jacobi(problem, iterations)
        truth = jacobi_solve_bf16(problem.initial_grid_bf16(), iterations)
        assert not np.array_equal(stitched, truth)

    def test_cluster_accounting(self):
        problem = LaplaceProblem(nx=32, ny=16)
        cluster, _ = _run_two_card_jacobi(problem, 4)
        assert cluster.wall_time_s > 0
        assert cluster.energy_j > 0
        assert all(card.sim.now > 0 for card in cluster)


class TestInitialGridApi:
    def test_optimized_runner_custom_state(self, device_factory):
        from repro.dtypes.bf16 import f32_to_bits
        p = LaplaceProblem(nx=32, ny=8, initial=0.0)
        grid = p.initial_grid_bf16()
        grid[3, 7] = f32_to_bits(np.float32(2.0))
        res = OptimizedJacobiRunner(device_factory(), p).run(
            2, initial_grid=grid)
        want = jacobi_solve_bf16(grid, 2)
        assert np.array_equal(res.grid_bits, want)

    def test_initial_runner_custom_state(self, device_factory):
        from repro.core.jacobi_initial import InitialJacobiRunner
        from repro.dtypes.bf16 import f32_to_bits
        p = LaplaceProblem(nx=32, ny=32, initial=0.0)
        grid = p.initial_grid_bf16()
        grid[10, 10] = f32_to_bits(np.float32(1.5))
        res = InitialJacobiRunner(device_factory(), p).run(
            2, initial_grid=grid)
        want = jacobi_solve_bf16(grid, 2)
        assert np.array_equal(res.grid_bits, want)
