"""Seeded-violation corpus: one minimally-broken kernel per lint rule.

Each kernel here violates exactly one rule (the one named in its
function name); the tests assert the expected rule ID fires, and — for
the per-kernel rules — that *only* that rule fires.  These kernels are
never executed, only statically traced.
"""

from repro.ttmetal.kernel_api import NocAddr


# -- K101: cb-loop-imbalance -------------------------------------------------

def k101_loop_imbalance(ctx):
    """Two reserves per push inside a non-unrollable loop: drifts +1/iter."""
    n = ctx.arg("n")
    for _ in range(n):
        yield from ctx.cb_reserve_back(0, 1)
        yield from ctx.cb_reserve_back(0, 1)
        yield from ctx.cb_push_back(0, 1)


# -- K102: cb-pop-without-wait -----------------------------------------------

def k102_pop_without_wait(ctx):
    """Pops CB 0 without ever waiting on it."""
    yield from ctx.cb_pop_front(0, 1)


# -- K103: unbarriered-read-publish -------------------------------------------

def k103_unbarriered_read_publish(ctx):
    """Publishes a CB page while the NoC read filling it is in flight."""
    buf = ctx.arg("buf")
    yield from ctx.cb_reserve_back(0, 1)
    yield from ctx.noc_read_buffer(buf, 0, ctx.cb_write_ptr(0), 64)
    yield from ctx.cb_push_back(0, 1)  # missing noc_async_read_barrier


# -- K104: unbarriered-write-handoff ------------------------------------------

def k104_unbarriered_write_handoff(ctx):
    """Signals the semaphore while the NoC write is still outstanding."""
    buf = ctx.arg("buf")
    l1 = ctx.core.sram.allocate(64)
    yield from ctx.noc_write_buffer(buf, 0, l1, 64)
    yield from ctx.semaphore_inc(0, 1)  # missing noc_async_write_barrier


# -- K105: rd-alias-before-wait -----------------------------------------------

def k105_alias_before_wait(ctx):
    """Re-points the rd alias after pop_front cleared it, with no re-wait."""
    yield from ctx.cb_wait_front(0, 1)
    yield from ctx.cb_pop_front(0, 1)
    yield from ctx.cb_set_rd_ptr(0, 32 * 1024)


# -- K106: misaligned-noc-address ---------------------------------------------

def k106_misaligned_noc_addr(ctx):
    """Raw NoC read from a DRAM address that is not 32-byte aligned."""
    l1 = ctx.core.sram.allocate(64)
    yield from ctx.noc_async_read(NocAddr(0, 13), l1, 64)
    yield from ctx.noc_async_read_barrier()


# -- P201: cb-no-consumer ------------------------------------------------------

def p201_lonely_producer(ctx):
    """Pushes CB 0; no kernel on the core ever consumes it."""
    yield from ctx.cb_reserve_back(0, 1)
    yield from ctx.cb_push_back(0, 1)


# -- P202: cb-no-producer ------------------------------------------------------

def p202_lonely_consumer(ctx):
    """Waits on CB 1; no kernel on the core ever pushes it."""
    yield from ctx.cb_wait_front(1, 1)
    yield from ctx.cb_pop_front(1, 1)


# -- P203: cb-page-deadlock ----------------------------------------------------

def p203_reserve_too_many(ctx):
    """Reserves 8 pages on a CB configured with only 4."""
    yield from ctx.cb_reserve_back(0, 8)
    yield from ctx.cb_push_back(0, 8)


def p203_consumer(ctx):
    """Companion consumer so P201 stays quiet in the P203 fixture."""
    yield from ctx.cb_wait_front(0, 1)
    yield from ctx.cb_pop_front(0, 1)


def p203_creeping_reserve(ctx):
    """Each reserve fits on its own, but the unpushed demand accumulates
    past n_pages=4 before the first push."""
    yield from ctx.cb_reserve_back(0, 2)
    yield from ctx.cb_reserve_back(0, 2)
    yield from ctx.cb_reserve_back(0, 2)
    yield from ctx.cb_push_back(0, 6)


# -- P205: missing-runtime-arg -------------------------------------------------

def p205_needs_missing_arg(ctx):
    """Requires a runtime arg that CreateKernel never passes."""
    target = ctx.arg("missing_thing")
    yield from ctx.semaphore_wait(0, target)


# -- P206: misaligned-buffer-offset --------------------------------------------

def p206_misaligned_offset(ctx):
    """Buffer-level read starting 13 bytes into a single-bank buffer."""
    buf = ctx.arg("src")
    l1 = ctx.core.sram.allocate(64)
    yield from ctx.noc_read_buffer(buf, 13, l1, 32)
    yield from ctx.noc_async_read_barrier()


# -- P207: cb-not-configured ---------------------------------------------------

def p207_producer_unconfigured(ctx):
    """Pushes CB 5, which the host never configured."""
    yield from ctx.cb_reserve_back(5, 1)
    yield from ctx.cb_push_back(5, 1)


def p207_consumer_unconfigured(ctx):
    """Consumes CB 5, which the host never configured."""
    yield from ctx.cb_wait_front(5, 1)
    yield from ctx.cb_pop_front(5, 1)
