"""Every shipped kernel and example must lint clean (the CLI gate)."""

import inspect

from repro.cli import main
from repro.lint import all_rules, extract_trace


class TestCliSweep:
    def test_shipped_kernels_and_examples_are_clean(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "OK: no findings" in out

    def test_list_rules_covers_catalogue(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.rule_id in out


class TestTraceability:
    def test_every_shipped_kernel_traces(self):
        """The extractor handles every kernel generator we ship."""
        from repro.core import (jacobi_initial, jacobi_optimized,
                                jacobi_sram, multicore, stencil)
        from repro.streaming import kernels as streaming_kernels
        modules = [jacobi_initial, jacobi_optimized, jacobi_sram,
                   multicore, stencil, streaming_kernels]
        checked = 0
        for module in modules:
            for name, fn in vars(module).items():
                if not (inspect.isfunction(fn)
                        and inspect.isgeneratorfunction(fn)
                        and fn.__module__ == module.__name__
                        and "kernel" in name):
                    continue
                trace = extract_trace(fn)
                assert not trace.unavailable, f"{module.__name__}.{name}"
                assert not trace.truncated, f"{module.__name__}.{name}"
                assert trace.nodes, f"{module.__name__}.{name} traced empty"
                checked += 1
        assert checked >= 10, f"only found {checked} shipped kernels"
