"""``repro lint`` CLI: exit-code contract, JSON format, --py, --witness.

Exit codes are the load-bearing behaviour: 0 when clean *or*
warnings-only, 1 only on an error-severity finding or under
``--strict``.  The full shipped-kernel sweep is exercised by
``tests/lint/test_clean_shipped.py``; here the fast corpus programs
drive the CLI paths.
"""

import json

from repro.cli import main


class TestExitCodes:
    def test_warnings_only_exits_zero(self, capsys):
        assert main(["lint", "--corpus", "P201"]) == 0
        out = capsys.readouterr().out
        assert "P201" in out
        assert "OK" in out

    def test_strict_promotes_warnings_to_failure(self, capsys):
        assert main(["lint", "--corpus", "P201", "--strict"]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_error_finding_exits_one(self, capsys):
        assert main(["lint", "--corpus", "R301"]) == 1
        out = capsys.readouterr().out
        assert "R301" in out
        assert "witness" in out

    def test_unknown_corpus_rule_exits_two(self, capsys):
        assert main(["lint", "--corpus", "R999"]) == 2
        assert "R999" in capsys.readouterr().err


class TestJsonFormat:
    def test_envelope_only_on_stdout(self, capsys):
        assert main(["lint", "--corpus", "R302", "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro-lint/1"
        assert doc["counts"] == {"errors": 1, "warnings": 0}
        (f,) = doc["findings"]
        assert f["rule_id"] == "R302"
        assert f["witness_digest"]

    def test_json_repeat_runs_byte_identical(self, capsys):
        main(["lint", "--corpus", "R305", "--format", "json"])
        first = capsys.readouterr().out
        main(["lint", "--corpus", "R305", "--format", "json"])
        assert capsys.readouterr().out == first

    def test_clean_json_exits_zero(self, capsys):
        assert main(["lint", "--corpus", "P201", "--format", "json",
                     ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["counts"]["errors"] == 0


class TestAuditAndWitness:
    def test_py_audit_is_clean(self, capsys):
        assert main(["lint", "--py"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_py_audit_json(self, capsys):
        assert main(["lint", "--py", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro-lint-py/1"
        assert doc["violations"] == []
        assert "bench.py" in doc["wall_clock_waivers"]

    def test_witness_replay_confirms_all(self, capsys):
        assert main(["lint", "--witness"]) == 0
        out = capsys.readouterr().out
        assert out.count("-> confirmed") == 5
        assert "UNCONFIRMED" not in out

    def test_list_rules_includes_the_launch_family(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("R301", "R302", "R303", "R304", "R305"):
            assert rule_id in out
