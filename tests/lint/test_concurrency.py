"""Cross-core concurrency rules (R301..R305): the happens-before pass.

Positive exactness for each rule lives in
``tests/lint/test_corpus_concurrency.py`` (driven by the seeded
corpus); this file covers the *model*: ordering edges that must
suppress findings, the fail-open paths (unknown operands, loops,
branches, single-core launches), and the R304 mismatch variant.
"""

from repro import lint
from repro.arch.tensix import DATA_MOVER_0, DATA_MOVER_1
from repro.lint.concurrency import concurrency_findings
from repro.sim.resources import Semaphore
from repro.ttmetal import CreateKernel, Program, create_buffer


def _two_cores(device):
    row = device.worker_grid(1, 2)[0]
    return row[0], row[1]


def rule_ids(findings):
    return sorted({f.rule_id for f in findings})


# --------------------------------------------------------------------------
# ordering edges suppress races
# --------------------------------------------------------------------------

class TestHappensBefore:
    def test_semaphore_handshake_orders_write_before_read(self, device):
        """barrier -> inc -> wait -> read: the canonical halo handoff."""
        def writer(ctx):
            buf = ctx.arg("buf")
            sem = ctx.arg("sem")
            src = ctx.core.sram.allocate(64, align=32)
            yield from ctx.noc_write_buffer(buf, 0, src, 64)
            yield from ctx.noc_async_write_barrier()
            yield from ctx.semaphore_inc(sem, 1)

        def reader(ctx):
            buf = ctx.arg("buf")
            sem = ctx.arg("sem")
            dst = ctx.core.sram.allocate(64, align=32)
            yield from ctx.semaphore_wait(sem, 1)
            yield from ctx.noc_read_buffer(buf, 0, dst, 64)
            yield from ctx.noc_async_read_barrier()

        buf = create_buffer(device, 4096, bank_id=0)
        sem = Semaphore(device.sim, value=0, name="handoff")
        core_a, core_b = _two_cores(device)
        prog = Program(device)
        CreateKernel(prog, writer, core_a, DATA_MOVER_0,
                     {"buf": buf, "sem": sem})
        CreateKernel(prog, reader, core_b, DATA_MOVER_0,
                     {"buf": buf, "sem": sem})
        assert concurrency_findings(prog) == []

    def test_unbarriered_write_does_not_commit_at_the_inc(self, device):
        """The inc orders the *wait*, not bytes still in flight: K104's
        bug seen globally.  Without the write barrier the handshake must
        NOT suppress the race."""
        def writer(ctx):
            buf = ctx.arg("buf")
            sem = ctx.arg("sem")
            src = ctx.core.sram.allocate(64, align=32)
            yield from ctx.noc_write_buffer(buf, 0, src, 64)
            yield from ctx.semaphore_inc(sem, 1)

        def reader(ctx):
            buf = ctx.arg("buf")
            sem = ctx.arg("sem")
            dst = ctx.core.sram.allocate(64, align=32)
            yield from ctx.semaphore_wait(sem, 1)
            yield from ctx.noc_read_buffer(buf, 0, dst, 64)
            yield from ctx.noc_async_read_barrier()

        buf = create_buffer(device, 4096, bank_id=0)
        sem = Semaphore(device.sim, value=0, name="handoff")
        core_a, core_b = _two_cores(device)
        prog = Program(device)
        CreateKernel(prog, writer, core_a, DATA_MOVER_0,
                     {"buf": buf, "sem": sem})
        CreateKernel(prog, reader, core_b, DATA_MOVER_0,
                     {"buf": buf, "sem": sem})
        assert rule_ids(concurrency_findings(prog)) == ["R302"]

    def test_interleaved_buffer_overlap_races_in_logical_space(self, device):
        """Interleaved buffers race on logical offsets, not bank bytes."""
        def writer_low(ctx):
            buf = ctx.arg("buf")
            src = ctx.core.sram.allocate(64, align=32)
            yield from ctx.noc_write_buffer(buf, 0, src, 64)
            yield from ctx.noc_async_write_barrier()

        def writer_high(ctx):
            buf = ctx.arg("buf")
            src = ctx.core.sram.allocate(64, align=32)
            yield from ctx.noc_write_buffer(buf, 32, src, 64)
            yield from ctx.noc_async_write_barrier()

        buf = create_buffer(device, 4096, interleaved=True, page_size=1024)
        core_a, core_b = _two_cores(device)
        prog = Program(device)
        CreateKernel(prog, writer_low, core_a, DATA_MOVER_0, {"buf": buf})
        CreateKernel(prog, writer_high, core_b, DATA_MOVER_0, {"buf": buf})
        findings = concurrency_findings(prog)
        assert rule_ids(findings) == ["R301"]
        assert "interleaved" in findings[0].message

    def test_disjoint_intervals_do_not_race(self, device):
        def writer_low(ctx):
            buf = ctx.arg("buf")
            src = ctx.core.sram.allocate(64, align=32)
            yield from ctx.noc_write_buffer(buf, 0, src, 64)
            yield from ctx.noc_async_write_barrier()

        def writer_far(ctx):
            buf = ctx.arg("buf")
            src = ctx.core.sram.allocate(64, align=32)
            yield from ctx.noc_write_buffer(buf, 128, src, 64)
            yield from ctx.noc_async_write_barrier()

        buf = create_buffer(device, 4096, bank_id=0)
        core_a, core_b = _two_cores(device)
        prog = Program(device)
        CreateKernel(prog, writer_low, core_a, DATA_MOVER_0, {"buf": buf})
        CreateKernel(prog, writer_far, core_b, DATA_MOVER_0, {"buf": buf})
        assert concurrency_findings(prog) == []


# --------------------------------------------------------------------------
# fail-open suppression
# --------------------------------------------------------------------------

def _straight_writer(ctx):
    buf = ctx.arg("buf")
    src = ctx.core.sram.allocate(64, align=32)
    yield from ctx.noc_write_buffer(buf, 0, src, 64)
    yield from ctx.noc_async_write_barrier()


class TestFailOpen:
    def test_same_core_slots_never_race(self, device):
        """dm0 and dm1 of one core: not cross-core, not R3xx's business."""
        def writer_high(ctx):
            buf = ctx.arg("buf")
            src = ctx.core.sram.allocate(64, align=32)
            yield from ctx.noc_write_buffer(buf, 32, src, 64)
            yield from ctx.noc_async_write_barrier()

        buf = create_buffer(device, 4096, bank_id=0)
        core = device.core(0, 0)
        prog = Program(device)
        CreateKernel(prog, _straight_writer, core, DATA_MOVER_0,
                     {"buf": buf})
        CreateKernel(prog, writer_high, core, DATA_MOVER_1, {"buf": buf})
        assert concurrency_findings(prog) == []

    def test_unknown_offset_suppresses_the_race(self, device):
        """A statically-unknown interval can never be a race endpoint."""
        def writer_unknown(ctx):
            buf = ctx.arg("buf")
            off = ctx.arg("off")
            src = ctx.core.sram.allocate(64, align=32)
            yield from ctx.noc_write_buffer(buf, off, src, 64)
            yield from ctx.noc_async_write_barrier()

        buf = create_buffer(device, 4096, bank_id=0)
        core_a, core_b = _two_cores(device)
        prog = Program(device)
        CreateKernel(prog, _straight_writer, core_a, DATA_MOVER_0,
                     {"buf": buf})
        CreateKernel(prog, writer_unknown, core_b, DATA_MOVER_0,
                     {"buf": buf, "off": 0})
        assert concurrency_findings(prog) == []

    def test_looped_access_is_not_a_candidate(self, device):
        """A write inside a symbolic loop has no exact call index, so no
        replayable witness exists — suppressed, not guessed."""
        def looped_writer(ctx):
            buf = ctx.arg("buf")
            n = ctx.arg("n")
            src = ctx.core.sram.allocate(64, align=32)
            for _ in range(n):
                yield from ctx.noc_write_buffer(buf, 0, src, 64)
            yield from ctx.noc_async_write_barrier()

        buf = create_buffer(device, 4096, bank_id=0)
        core_a, core_b = _two_cores(device)
        prog = Program(device)
        CreateKernel(prog, _straight_writer, core_a, DATA_MOVER_0,
                     {"buf": buf})
        CreateKernel(prog, looped_writer, core_b, DATA_MOVER_0,
                     {"buf": buf, "n": 2})
        assert concurrency_findings(prog) == []

    def test_guarded_access_is_not_a_candidate(self, device):
        def guarded_writer(ctx):
            buf = ctx.arg("buf")
            src = ctx.core.sram.allocate(64, align=32)
            if ctx.arg("flag"):
                yield from ctx.noc_write_buffer(buf, 0, src, 64)
            yield from ctx.noc_async_write_barrier()

        buf = create_buffer(device, 4096, bank_id=0)
        core_a, core_b = _two_cores(device)
        prog = Program(device)
        CreateKernel(prog, _straight_writer, core_a, DATA_MOVER_0,
                     {"buf": buf})
        CreateKernel(prog, guarded_writer, core_b, DATA_MOVER_0,
                     {"buf": buf, "flag": True})
        assert concurrency_findings(prog) == []

    def test_unknown_semaphore_op_suppresses_races(self, device):
        """An unresolvable semaphore op could carry the missing ordering
        edge; every race in the launch stands down."""
        def writer_with_mystery_wait(ctx):
            buf = ctx.arg("buf")
            sem = ctx.arg("mystery")
            src = ctx.core.sram.allocate(64, align=32)
            yield from ctx.semaphore_wait(sem, 1)
            yield from ctx.noc_write_buffer(buf, 32, src, 64)
            yield from ctx.noc_async_write_barrier()

        buf = create_buffer(device, 4096, bank_id=0)
        core_a, core_b = _two_cores(device)
        prog = Program(device)
        CreateKernel(prog, _straight_writer, core_a, DATA_MOVER_0,
                     {"buf": buf})
        # "mystery" deliberately absent from args: unresolvable identity
        CreateKernel(prog, writer_with_mystery_wait, core_b, DATA_MOVER_0,
                     {"buf": buf})
        assert concurrency_findings(prog) == []


# --------------------------------------------------------------------------
# signal accounting (R304) details
# --------------------------------------------------------------------------

class TestSignalAccounting:
    def test_mismatched_budget_is_flagged(self, device):
        """Signals exist but sum below the wait threshold: still stuck."""
        def waiter(ctx):
            yield from ctx.semaphore_wait(ctx.arg("sem"), 3)

        def signaler(ctx):
            yield from ctx.semaphore_inc(ctx.arg("sem"), 1)

        sem = Semaphore(device.sim, value=0, name="short")
        core_a, core_b = _two_cores(device)
        prog = Program(device)
        CreateKernel(prog, waiter, core_a, DATA_MOVER_0, {"sem": sem})
        CreateKernel(prog, signaler, core_b, DATA_MOVER_0, {"sem": sem})
        findings = concurrency_findings(prog)
        # one precise finding: R305 stands down when R304 explains it
        assert rule_ids(findings) == ["R304"]
        assert findings[0].witness is not None

    def test_sufficient_budget_is_clean(self, device):
        def waiter(ctx):
            yield from ctx.semaphore_wait(ctx.arg("sem"), 2)

        def signaler(ctx):
            yield from ctx.semaphore_inc(ctx.arg("sem"), 2)

        sem = Semaphore(device.sim, value=0, name="enough")
        core_a, core_b = _two_cores(device)
        prog = Program(device)
        CreateKernel(prog, waiter, core_a, DATA_MOVER_0, {"sem": sem})
        CreateKernel(prog, signaler, core_b, DATA_MOVER_0, {"sem": sem})
        assert concurrency_findings(prog) == []


# --------------------------------------------------------------------------
# deadlock detection (R305) via closure-captured semaphores
# --------------------------------------------------------------------------

class TestDeadlockResolution:
    def test_closure_captured_semaphores_resolve(self, device):
        """Kernels that close over live Semaphore objects (instead of
        taking them as runtime args) still get the circular wait."""
        sem_a = Semaphore(device.sim, 0, name="a")
        sem_b = Semaphore(device.sim, 0, name="b")

        def first(ctx):
            yield from ctx.semaphore_wait(sem_a, 1)
            yield from ctx.semaphore_inc(sem_b, 1)

        def second(ctx):
            yield from ctx.semaphore_wait(sem_b, 1)
            yield from ctx.semaphore_inc(sem_a, 1)

        core_a, core_b = _two_cores(device)
        prog = Program(device)
        CreateKernel(prog, first, core_a, DATA_MOVER_0, {})
        CreateKernel(prog, second, core_b, DATA_MOVER_0, {})
        findings = concurrency_findings(prog)
        assert rule_ids(findings) == ["R305"]
        assert findings[0].witness.kind == "hang"

    def test_signal_before_wait_breaks_the_cycle(self, device):
        """The textbook fix — one side signals first — lints clean."""
        sem_a = Semaphore(device.sim, 0, name="a")
        sem_b = Semaphore(device.sim, 0, name="b")

        def first(ctx):
            yield from ctx.semaphore_inc(sem_b, 1)
            yield from ctx.semaphore_wait(sem_a, 1)

        def second(ctx):
            yield from ctx.semaphore_wait(sem_b, 1)
            yield from ctx.semaphore_inc(sem_a, 1)

        core_a, core_b = _two_cores(device)
        prog = Program(device)
        CreateKernel(prog, first, core_a, DATA_MOVER_0, {})
        CreateKernel(prog, second, core_b, DATA_MOVER_0, {})
        assert concurrency_findings(prog) == []


# --------------------------------------------------------------------------
# the multicast op in the single-kernel rules
# --------------------------------------------------------------------------

class TestMulticastKernelRules:
    def test_multicast_counts_as_write_for_k104(self):
        def bad(ctx):
            dsts = ctx.arg("dsts")
            src = ctx.core.sram.allocate(64, align=32)
            yield from ctx.noc_sram_write_multicast(dsts, 0x8000, src, 64)
            yield from ctx.semaphore_inc(0, 1)

        assert "K104" in {f.rule_id for f in lint.lint_kernel(bad)}

    def test_barriered_multicast_is_clean(self):
        def good(ctx):
            dsts = ctx.arg("dsts")
            src = ctx.core.sram.allocate(64, align=32)
            yield from ctx.noc_sram_write_multicast(dsts, 0x8000, src, 64)
            yield from ctx.noc_async_write_barrier()
            yield from ctx.semaphore_inc(0, 1)

        assert not lint.lint_kernel(good)
