"""The R3xx seeded-violation corpus: exactness + dynamic witness replay.

Two-sided honesty check for the concurrency verifier: every corpus
program must flag *exactly* its rule (no cross-talk between rules, no
noise from the K/P families), and every finding's counterexample
schedule must actually reproduce in the discrete-event simulator —
races by steering the interleaving and comparing concrete runtime byte
intervals, hangs by tripping the ``Finish`` watchdog with the
predicted kernels stalled.
"""

import json

import pytest

from repro import lint
from repro.lint import corpus_concurrency as corpus
from repro.lint.witness import Witness


def _single_finding(rule_id):
    _dev, prog = corpus.build(rule_id)
    report = lint.lint_program(prog)
    assert report.rule_ids() == [rule_id]
    (finding,) = report.findings
    return finding


@pytest.mark.parametrize("rule_id", corpus.RULE_IDS)
class TestCorpus:
    def test_flags_exactly_its_rule(self, rule_id):
        finding = _single_finding(rule_id)
        assert finding.severity == lint.Severity.ERROR
        assert finding.witness is not None
        assert finding.witness.rule_id == rule_id

    def test_witness_confirms_dynamically(self, rule_id):
        finding = _single_finding(rule_id)
        result = lint.replay_witness(corpus.CORPUS[rule_id],
                                     finding.witness)
        assert result.confirmed, f"{rule_id}: {result.detail}"

    def test_witness_json_round_trip_and_digest(self, rule_id):
        witness = _single_finding(rule_id).witness
        wire = json.dumps(witness.to_json(), sort_keys=True)
        again = Witness.from_json(json.loads(wire))
        assert again == witness
        assert again.digest() == witness.digest()
        assert len(witness.digest()) == 16

    def test_render_advertises_the_witness(self, rule_id):
        finding = _single_finding(rule_id)
        text = finding.render()
        assert finding.witness.digest() in text
        assert "repro lint --witness" in text


class TestCorpusAuxiliary:
    def test_warning_program_flags_only_p201(self):
        _dev, prog = corpus.warning_program()
        report = lint.lint_program(prog)
        assert report.rule_ids() == ["P201"]
        assert not report.errors

    def test_build_accepts_p201(self):
        _dev, prog = corpus.build("P201")
        assert lint.lint_program(prog).rule_ids() == ["P201"]

    def test_build_rejects_unknown_rule(self):
        with pytest.raises(KeyError, match="R301"):
            corpus.build("R999")

    def test_race_witness_kinds(self):
        for rule_id in ("R301", "R302", "R303"):
            witness = _single_finding(rule_id).witness
            assert witness.kind == "race"
            assert len(witness.steps) == 2

    def test_hang_witness_kinds(self):
        for rule_id in ("R304", "R305"):
            witness = _single_finding(rule_id).witness
            assert witness.kind == "hang"
            assert witness.blocked
