"""docs/lint_rules.md must stay in sync with the rule registry."""

import pathlib

from repro.lint import all_rules

DOCS = pathlib.Path(__file__).resolve().parents[2] / "docs"


class TestCatalogue:
    def test_every_rule_is_documented(self):
        text = (DOCS / "lint_rules.md").read_text()
        for rule in all_rules():
            assert f"{rule.rule_id} `{rule.name}`" in text, \
                f"{rule.rule_id} missing from docs/lint_rules.md"

    def test_writing_kernels_links_the_catalogue(self):
        text = (DOCS / "writing_kernels.md").read_text()
        assert "lint_rules.md" in text
