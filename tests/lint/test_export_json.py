"""The ``repro-lint/1`` envelope: schema stability and byte-identical
round trips, following the repo's JSON conventions."""

import json

import pytest

from repro import lint
from repro.lint import corpus_concurrency as corpus
from repro.lint.export import (
    SCHEMA,
    report_from_json,
    report_to_json,
    to_json_text,
)
from repro.lint.findings import LintReport


def _report(rule_id):
    _dev, prog = corpus.build(rule_id)
    return lint.lint_program(prog)


class TestEnvelope:
    def test_schema_and_counts(self):
        doc = report_to_json(_report("R301"))
        assert doc["schema"] == SCHEMA == "repro-lint/1"
        assert doc["counts"] == {"errors": 1, "warnings": 0}
        (f,) = doc["findings"]
        assert f["rule_id"] == "R301"
        assert f["witness"]["kind"] == "race"
        from repro.lint.witness import Witness
        assert f["witness_digest"] == \
            Witness.from_json(f["witness"]).digest()

    def test_warning_finding_has_no_witness(self):
        doc = report_to_json(_report("P201"))
        assert doc["counts"] == {"errors": 0, "warnings": 1}
        (f,) = doc["findings"]
        assert f["witness"] is None and f["witness_digest"] is None

    def test_round_trip_is_byte_identical(self):
        for rule_id in ("R301", "R304", "P201"):
            report = _report(rule_id)
            text = to_json_text(report_to_json(report))
            rebuilt = report_from_json(json.loads(text))
            assert to_json_text(report_to_json(rebuilt)) == text
            assert rebuilt.findings == report.findings

    def test_empty_report_round_trips(self):
        empty = LintReport(scope="program")
        text = to_json_text(report_to_json(empty))
        rebuilt = report_from_json(json.loads(text))
        assert rebuilt.findings == []
        assert to_json_text(report_to_json(rebuilt)) == text

    def test_serialization_is_canonical(self):
        text = to_json_text(report_to_json(_report("R302")))
        assert text.endswith("\n")
        assert text == json.dumps(json.loads(text), sort_keys=True,
                                  indent=1) + "\n"

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError, match="repro-lint/1"):
            report_from_json({"schema": "repro-faults/1", "findings": []})
