"""EnqueueProgram lint integration: warn / strict / off / env / capture."""

import warnings

import pytest

from repro import lint
from repro.arch.tensix import COMPUTE, DATA_MOVER_0
from repro.ttmetal import (
    CreateCircularBuffer,
    CreateKernel,
    EnqueueProgram,
    LintError,
    LintWarning,
    Program,
)
from tests.lint.fixtures import broken_kernels as bk


def broken_program(device):
    """A program whose only defect is the P201 lonely producer."""
    prog = Program(device)
    core = device.core(0, 0)
    CreateCircularBuffer(prog, core, 0, 64, 2)
    CreateKernel(prog, bk.p201_lonely_producer, core, DATA_MOVER_0, {})
    return prog


def clean_program(device):
    def producer(ctx):
        yield from ctx.cb_reserve_back(0, 1)
        yield from ctx.cb_push_back(0, 1)

    def consumer(ctx):
        yield from ctx.cb_wait_front(0, 1)
        yield from ctx.cb_pop_front(0, 1)
    prog = Program(device)
    core = device.core(0, 0)
    CreateCircularBuffer(prog, core, 0, 64, 2)
    CreateKernel(prog, producer, core, DATA_MOVER_0, {})
    CreateKernel(prog, consumer, core, COMPUTE, {})
    return prog


class TestModes:
    def test_default_mode_warns(self, device, monkeypatch):
        monkeypatch.delenv("REPRO_LINT", raising=False)
        with pytest.warns(LintWarning, match="P201"):
            EnqueueProgram(device, broken_program(device))

    def test_strict_raises(self, device):
        with pytest.raises(LintError) as exc_info:
            EnqueueProgram(device, broken_program(device), lint="strict")
        report = exc_info.value.report
        assert {f.rule_id for f in report.findings} == {"P201"}

    def test_off_is_silent(self, device):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            EnqueueProgram(device, broken_program(device), lint="off")

    def test_env_var_selects_mode(self, device, monkeypatch):
        monkeypatch.setenv("REPRO_LINT", "strict")
        with pytest.raises(LintError):
            EnqueueProgram(device, broken_program(device))

    def test_env_var_off(self, device, monkeypatch):
        monkeypatch.setenv("REPRO_LINT", "off")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            EnqueueProgram(device, broken_program(device))

    def test_explicit_mode_beats_env(self, device, monkeypatch):
        monkeypatch.setenv("REPRO_LINT", "strict")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            EnqueueProgram(device, broken_program(device), lint="off")

    def test_invalid_mode_rejected(self, device):
        with pytest.raises(ValueError, match="unknown lint mode"):
            EnqueueProgram(device, broken_program(device), lint="loud")

    def test_clean_program_never_warns(self, device):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            EnqueueProgram(device, clean_program(device), lint="strict")


class TestCapture:
    def test_capture_collects_instead_of_warning(self, device):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with lint.capture() as report:
                EnqueueProgram(device, broken_program(device))
        assert {f.rule_id for f in report.findings} == {"P201"}

    def test_capture_suppresses_strict_raise(self, device):
        with lint.capture() as report:
            EnqueueProgram(device, broken_program(device), lint="strict")
        assert report

    def test_deliver_without_collector(self):
        assert not lint.deliver(lint.LintReport(scope="test"))


class TestReportRendering:
    def test_render_lists_rule_and_location(self, device):
        report = lint.lint_program(broken_program(device))
        text = report.render()
        assert "P201" in text
        assert "broken_kernels.py" in text
        assert "hint:" in text

    def test_report_counts(self, device):
        report = lint.lint_program(broken_program(device))
        assert len(report) == 1
        assert len(report.warnings) == 1
        assert len(report.errors) == 0
        assert bool(report)
