"""The host-side Python determinism audit (``repro lint --py``)."""

import ast
from pathlib import Path

from repro.lint import pysource


def _violations(src, **kwargs):
    return pysource.violations(ast.parse(src), "mod.py", **kwargs)


class TestDetection:
    def test_time_import_flagged(self):
        (v,) = _violations("import time")
        assert "wall-clock" in v and "time" in v

    def test_datetime_from_import_flagged(self):
        (v,) = _violations("from datetime import date")
        assert "datetime" in v

    def test_global_random_call_flagged(self):
        (v,) = _violations("import random\nrandom.choice([1, 2])")
        assert "random.choice" in v

    def test_seeded_random_constructor_clean(self):
        assert _violations("import random\nrng = random.Random(7)") == []

    def test_unseeded_default_rng_flagged(self):
        (v,) = _violations("import numpy as np\nnp.random.default_rng()")
        assert "default_rng" in v

    def test_seeded_default_rng_clean(self):
        assert _violations(
            "import numpy as np\nnp.random.default_rng(7)") == []

    def test_legacy_numpy_random_flagged(self):
        (v,) = _violations("import numpy as np\nnp.random.normal()")
        assert "numpy.random.normal" in v


class TestWaivers:
    def test_allow_wall_clock_drops_only_clock_findings(self):
        src = "import time\nimport random\nrandom.choice([1])"
        waived = _violations(src, allow_wall_clock=True)
        assert len(waived) == 1
        assert "random.choice" in waived[0]
        assert len(_violations(src)) == 2

    def test_every_waived_module_exists(self):
        root = Path(pysource.__file__).resolve().parents[1]
        for rel, reason in pysource.WALL_CLOCK_WAIVERS.items():
            assert (root / rel).is_file(), rel
            assert reason


class TestPackageAudit:
    def test_repro_package_is_clean(self):
        assert pysource.audit_repro() == []

    def test_sweep_is_recursive(self):
        root = Path(pysource.__file__).resolve().parents[1]
        rels = {p.relative_to(root).as_posix()
                for p in pysource.repro_sources()}
        # subpackage files must be covered, not just the package root
        assert "parallel/engine.py" in rels
        assert "lint/concurrency.py" in rels
        assert "serve/pool.py" in rels

    def test_waivers_cover_every_wall_clock_user(self):
        """Any new time/datetime import must either be waived (with a
        reason) or removed — this is the guard the CI --py step relies
        on, broken down per file for a readable failure."""
        root = Path(pysource.__file__).resolve().parents[1]
        for path in pysource.repro_sources():
            rel = path.relative_to(root).as_posix()
            if rel in pysource.WALL_CLOCK_WAIVERS:
                continue
            clock = [v for v in pysource.audit_source(path)
                     if "wall-clock" in v]
            assert clock == [], f"{rel} needs a documented waiver"


class TestLegacyWrapper:
    def test_tests_rng_audit_reexports_the_real_helpers(self):
        from tests import rng_audit
        assert rng_audit.violations is pysource.violations
        assert rng_audit.audit_source is pysource.audit_source
        assert rng_audit.package_sources is pysource.package_sources
        assert rng_audit.FORBIDDEN_IMPORTS == {"time", "datetime"}
