"""Per-kernel rules (K101..K106) against the seeded-violation corpus."""

import pytest

from repro import lint
from tests.lint.fixtures import broken_kernels as bk


def rule_ids(fn):
    return {f.rule_id for f in lint.lint_kernel(fn)}


class TestCorpusFires:
    @pytest.mark.parametrize("fn,expected", [
        (bk.k101_loop_imbalance, "K101"),
        (bk.k102_pop_without_wait, "K102"),
        (bk.k103_unbarriered_read_publish, "K103"),
        (bk.k104_unbarriered_write_handoff, "K104"),
        (bk.k105_alias_before_wait, "K105"),
        (bk.k106_misaligned_noc_addr, "K106"),
    ])
    def test_exactly_the_expected_rule(self, fn, expected):
        assert rule_ids(fn) == {expected}

    def test_findings_carry_location_and_hint(self):
        (finding,) = lint.lint_kernel(bk.k102_pop_without_wait)
        assert finding.rule_id == "K102"
        assert finding.filename.endswith("broken_kernels.py")
        assert finding.lineno > 0
        assert finding.kernel == "k102_pop_without_wait"
        assert finding.hint
        assert "K102" in finding.render()


class TestCleanKernels:
    def test_balanced_loop_is_clean(self):
        def balanced(ctx):
            n = ctx.arg("n")
            for _ in range(n):
                yield from ctx.cb_reserve_back(0, 1)
                yield from ctx.cb_push_back(0, 1)
                yield from ctx.cb_wait_front(1, 1)
                yield from ctx.cb_pop_front(1, 1)
        assert rule_ids(balanced) == set()

    def test_barriered_read_publish_is_clean(self):
        def good(ctx):
            buf = ctx.arg("buf")
            yield from ctx.cb_reserve_back(0, 1)
            yield from ctx.noc_read_buffer(buf, 0, ctx.cb_write_ptr(0), 64)
            yield from ctx.noc_async_read_barrier()
            yield from ctx.cb_push_back(0, 1)
        assert rule_ids(good) == set()

    def test_sync_read_needs_no_barrier(self):
        def good(ctx):
            buf = ctx.arg("buf")
            yield from ctx.cb_reserve_back(0, 1)
            yield from ctx.noc_read_buffer_burst(
                buf, [(0, 64)], ctx.cb_write_ptr(0), sync=True)
            yield from ctx.cb_push_back(0, 1)
        assert rule_ids(good) == set()

    def test_barriered_write_handoff_is_clean(self):
        def good(ctx):
            buf = ctx.arg("buf")
            l1 = ctx.core.sram.allocate(64)
            yield from ctx.noc_write_buffer(buf, 0, l1, 64)
            yield from ctx.noc_async_write_barrier()
            yield from ctx.semaphore_inc(0, 1)
        assert rule_ids(good) == set()

    def test_rewaited_alias_is_clean(self):
        def good(ctx):
            yield from ctx.cb_wait_front(0, 1)
            yield from ctx.cb_set_rd_ptr(0, 32 * 1024)
            yield from ctx.cb_pop_front(0, 1)
            yield from ctx.cb_wait_front(0, 1)
            yield from ctx.cb_set_rd_ptr(0, 64 * 1024)
            yield from ctx.cb_pop_front(0, 1)
        assert rule_ids(good) == set()

    def test_aligned_noc_address_is_clean(self):
        from repro.ttmetal.kernel_api import NocAddr

        def good(ctx):
            l1 = ctx.core.sram.allocate(64)
            yield from ctx.noc_async_read(NocAddr(0, 64), l1, 64)
            yield from ctx.noc_async_read_barrier()
        assert rule_ids(good) == set()


class TestFailOpen:
    def test_branch_dependent_barrier_is_maybe_not_flagged(self):
        """A barrier behind a data-dependent branch gives MAYBE, not YES."""
        def kernel(ctx):
            buf = ctx.arg("buf")
            yield from ctx.cb_reserve_back(0, 1)
            yield from ctx.noc_read_buffer(buf, 0, ctx.cb_write_ptr(0), 64)
            if ctx.arg("flush"):
                yield from ctx.noc_async_read_barrier()
            yield from ctx.cb_push_back(0, 1)
        assert rule_ids(kernel) == set()

    def test_unparseable_kernel_stands_down(self):
        """A kernel without retrievable source must not crash the linter."""
        code = ("def built(ctx):\n"
                "    yield from ctx.cb_pop_front(0, 1)\n")
        ns = {}
        exec(code, ns)
        trace = lint.extract_trace(ns["built"])
        assert trace.unavailable
        assert lint.lint_kernel(ns["built"]) == []

    def test_unknown_cb_id_suppresses_k102(self):
        def kernel(ctx):
            cb = ctx.arg("cb")
            yield from ctx.cb_wait_front(cb, 1)
            yield from ctx.cb_pop_front(0, 1)
        assert rule_ids(kernel) == set()
