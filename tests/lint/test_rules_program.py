"""Program-level rules (P201..P207) against seeded-violation programs."""

import pytest

from repro import lint
from repro.arch.tensix import COMPUTE, DATA_MOVER_0, DATA_MOVER_1
from repro.ttmetal import (
    CreateCircularBuffer,
    CreateKernel,
    CreateSemaphore,
    Program,
    create_buffer,
)
from tests.lint.fixtures import broken_kernels as bk


def build(device, kernels, cbs=(), sems=()):
    """Assemble (but do not enqueue) a single-core program."""
    prog = Program(device)
    core = device.core(0, 0)
    for cb_id, page, pages in cbs:
        CreateCircularBuffer(prog, core, cb_id, page, pages)
    for sem_id, initial in sems:
        CreateSemaphore(prog, core, sem_id, initial)
    for fn, slot, args in kernels:
        CreateKernel(prog, fn, core, slot, args)
    return prog


def rule_ids(report):
    return {f.rule_id for f in report.findings}


class TestCbGraph:
    def test_p201_no_consumer(self, device):
        prog = build(device, [(bk.p201_lonely_producer, DATA_MOVER_0, {})],
                     cbs=[(0, 64, 2)])
        report = lint.lint_program(prog)
        assert rule_ids(report) == {"P201"}
        (finding,) = report.findings
        assert finding.severity == lint.Severity.WARNING
        assert "CB 0" in finding.message

    def test_p202_no_producer(self, device):
        prog = build(device, [(bk.p202_lonely_consumer, COMPUTE, {})],
                     cbs=[(1, 64, 2)])
        report = lint.lint_program(prog)
        assert rule_ids(report) == {"P202"}

    def test_paired_producer_consumer_is_clean(self, device):
        def producer(ctx):
            yield from ctx.cb_reserve_back(0, 1)
            yield from ctx.cb_push_back(0, 1)

        def consumer(ctx):
            yield from ctx.cb_wait_front(0, 1)
            yield from ctx.cb_pop_front(0, 1)
        prog = build(device, [(producer, DATA_MOVER_0, {}),
                              (consumer, COMPUTE, {})], cbs=[(0, 64, 2)])
        assert rule_ids(lint.lint_program(prog)) == set()

    def test_p207_unconfigured_cb(self, device):
        prog = build(device,
                     [(bk.p207_producer_unconfigured, DATA_MOVER_0, {}),
                      (bk.p207_consumer_unconfigured, COMPUTE, {})],
                     cbs=[(0, 64, 2)])
        report = lint.lint_program(prog)
        assert rule_ids(report) == {"P207"}
        assert {f.kernel for f in report.findings} == {
            "p207_producer_unconfigured", "p207_consumer_unconfigured"}

    def test_p207_guarded_reference_is_not_flagged(self, device):
        """A CB referenced only inside a branch may be feature-gated."""
        def producer(ctx):
            yield from ctx.cb_reserve_back(0, 1)
            yield from ctx.cb_push_back(0, 1)
            if ctx.arg("extra", default=None) is not None:
                yield from ctx.cb_reserve_back(5, 1)
                yield from ctx.cb_push_back(5, 1)

        def consumer(ctx):
            yield from ctx.cb_wait_front(0, 1)
            yield from ctx.cb_pop_front(0, 1)
            if ctx.arg("extra", default=None) is not None:
                yield from ctx.cb_wait_front(5, 1)
                yield from ctx.cb_pop_front(5, 1)
        prog = build(device, [(producer, DATA_MOVER_0, {}),
                              (consumer, COMPUTE, {})], cbs=[(0, 64, 2)])
        assert rule_ids(lint.lint_program(prog)) == set()


class TestPageDeadlock:
    def test_p203_single_reserve_exceeds_pages(self, device):
        prog = build(device, [(bk.p203_reserve_too_many, DATA_MOVER_0, {}),
                              (bk.p203_consumer, COMPUTE, {})],
                     cbs=[(0, 64, 4)])
        report = lint.lint_program(prog)
        assert rule_ids(report) == {"P203"}
        assert "n_pages=4" in report.findings[0].message

    def test_p203_cumulative_reserve_exceeds_pages(self, device):
        prog = build(device, [(bk.p203_creeping_reserve, DATA_MOVER_0, {}),
                              (bk.p203_consumer, COMPUTE, {})],
                     cbs=[(0, 64, 4)])
        report = lint.lint_program(prog)
        assert "P203" in rule_ids(report)

    def test_p203_within_pages_is_clean(self, device):
        def ok(ctx):
            yield from ctx.cb_reserve_back(0, 4)
            yield from ctx.cb_push_back(0, 4)
        prog = build(device, [(ok, DATA_MOVER_0, {}),
                              (bk.p203_consumer, COMPUTE, {})],
                     cbs=[(0, 64, 4)])
        assert rule_ids(lint.lint_program(prog)) == set()


class TestL1Overlap:
    def test_p204_overlapping_regions(self):
        findings = lint.lint_l1_regions(
            [(0, 128, "a"), (96, 64, "b")], capacity=1 << 20)
        assert [f.rule_id for f in findings] == ["P204"]
        assert "'a'" in findings[0].message and "'b'" in findings[0].message

    def test_p204_capacity_exceeded(self):
        findings = lint.lint_l1_regions(
            [(0, 128, "a"), ((1 << 20) - 64, 128, "big")],
            capacity=1 << 20)
        assert [f.rule_id for f in findings] == ["P204"]
        assert "exceeds" in findings[0].message

    def test_p204_disjoint_regions_clean(self):
        assert lint.lint_l1_regions(
            [(0, 128, "a"), (128, 128, "b"), (512, 64, "c")],
            capacity=1 << 20) == []

    def test_p204_through_program(self, device):
        prog = build(device, [(bk.p203_consumer, COMPUTE, {})],
                     cbs=[(0, 64, 2)])
        core = device.core(0, 0)
        base = core.sram.regions[-1][0]
        core.sram.regions.append((base + 16, 64, "forged-overlap"))
        report = lint.lint_program(prog)
        assert "P204" in rule_ids(report)


class TestArgsAndAlignment:
    def test_p205_missing_runtime_arg(self, device):
        prog = build(device, [(bk.p205_needs_missing_arg, DATA_MOVER_0, {})],
                     sems=[(0, 0)])
        report = lint.lint_program(prog)
        assert rule_ids(report) == {"P205"}
        assert "missing_thing" in report.findings[0].message

    def test_p205_provided_arg_is_clean(self, device):
        prog = build(device,
                     [(bk.p205_needs_missing_arg, DATA_MOVER_0,
                       {"missing_thing": 3})], sems=[(0, 0)])
        assert rule_ids(lint.lint_program(prog)) == set()

    def test_p205_default_arg_is_clean(self, device):
        def kernel(ctx):
            flag = ctx.arg("optional", default=None)
            yield from ctx.semaphore_wait(0, 0)
        prog = build(device, [(kernel, DATA_MOVER_0, {})], sems=[(0, 0)])
        assert rule_ids(lint.lint_program(prog)) == set()

    def test_p206_misaligned_offset(self, device):
        buf = create_buffer(device, 256, bank_id=0)
        prog = build(device, [(bk.p206_misaligned_offset, DATA_MOVER_0,
                               {"src": buf})])
        report = lint.lint_program(prog)
        assert rule_ids(report) == {"P206"}
        assert "offset 13" in report.findings[0].message

    def test_p206_aligned_offset_is_clean(self, device):
        def kernel(ctx):
            buf = ctx.arg("src")
            l1 = ctx.core.sram.allocate(64)
            yield from ctx.noc_read_buffer(buf, 32, l1, 32)
            yield from ctx.noc_async_read_barrier()
        buf = create_buffer(device, 256, bank_id=0)
        prog = build(device, [(kernel, DATA_MOVER_0, {"src": buf})])
        assert rule_ids(lint.lint_program(prog)) == set()

    def test_p206_interleaved_buffers_exempt(self, device):
        """Interleaved buffers re-page transfers; offsets need no alignment."""
        def kernel(ctx):
            buf = ctx.arg("src")
            l1 = ctx.core.sram.allocate(64)
            yield from ctx.noc_read_buffer(buf, 13, l1, 32)
            yield from ctx.noc_async_read_barrier()
        buf = create_buffer(device, 512, interleaved=True, page_size=128)
        prog = build(device, [(kernel, DATA_MOVER_0, {"src": buf})])
        assert rule_ids(lint.lint_program(prog)) == set()
