"""Unit tests for the symbolic trace extractor."""

from repro.lint import extract_trace
from repro.lint.trace import (ArgVal, Branch, Call, CbPtr, Loop,
                              NocAddrVal, const_int, iter_calls,
                              iter_calls_guarded)


def calls(fn):
    return list(iter_calls(extract_trace(fn).nodes))


class TestUnrolling:
    def test_const_range_is_unrolled(self):
        def kernel(ctx):
            for _ in range(3):
                yield from ctx.cb_reserve_back(0, 1)
        assert len([c for c in calls(kernel)
                    if c.name == "cb_reserve_back"]) == 3

    def test_tuple_literal_is_unrolled_with_destructuring(self):
        def kernel(ctx):
            for cb, n in ((2, 1), (3, 2)):
                yield from ctx.cb_reserve_back(cb, n)
        got = [(const_int(c.operand(0, "cb_id")), const_int(c.operand(1, "n")))
               for c in calls(kernel)]
        assert got == [(2, 1), (3, 2)]

    def test_unknown_trip_count_becomes_loop(self):
        def kernel(ctx):
            for _ in range(ctx.arg("n")):
                yield from ctx.cb_reserve_back(0, 1)
        trace = extract_trace(kernel)
        assert any(isinstance(n, Loop) for n in trace.nodes)


class TestInlining:
    def test_nested_helper_is_inlined(self):
        def kernel(ctx):
            def fill(cb):
                yield from ctx.cb_reserve_back(cb, 1)
                yield from ctx.cb_push_back(cb, 1)
            yield from fill(7)
        names = [c.name for c in calls(kernel)]
        assert names == ["cb_reserve_back", "cb_push_back"]
        assert const_int(calls(kernel)[0].operand(0, "cb_id")) == 7


class TestValues:
    def test_cb_write_ptr_is_symbolic(self):
        def kernel(ctx):
            buf = ctx.arg("buf")
            yield from ctx.noc_read_buffer(buf, 0, ctx.cb_write_ptr(4), 64)
        (call,) = calls(kernel)
        dest = call.operand(2, "l1_addr")
        assert isinstance(dest, CbPtr)
        assert dest.cb == 4 and dest.kind == "write"
        assert isinstance(call.operand(0, "buf"), ArgVal)

    def test_noc_addr_arithmetic(self):
        from repro.ttmetal.kernel_api import NocAddr

        def kernel(ctx):
            base = NocAddr(0, 64)
            yield from ctx.noc_async_read(base + 32, 0, 32)
        (call,) = calls(kernel)
        addr = call.operand(0, "noc_addr")
        assert isinstance(addr, NocAddrVal)
        assert const_int(addr.addr) == 96

    def test_arg_refs_record_required_and_optional(self):
        def kernel(ctx):
            a = ctx.arg("must_have")
            b = ctx.arg("may_have", default=None)
            yield from ctx.semaphore_wait(0, 0)
        trace = extract_trace(kernel)
        refs = {r.name: r.required for r in trace.arg_refs}
        assert refs == {"must_have": True, "may_have": False}


class TestControlFlow:
    def test_branches_keep_both_arms(self):
        def kernel(ctx):
            if ctx.arg("flag"):
                yield from ctx.cb_reserve_back(0, 1)
            else:
                yield from ctx.cb_reserve_back(1, 1)
        trace = extract_trace(kernel)
        branch = next(n for n in trace.nodes if isinstance(n, Branch))
        assert len(branch.arms) == 2
        seen = {const_int(c.operand(0, "cb_id"))
                for c in iter_calls(trace.nodes)}
        assert seen == {0, 1}

    def test_iter_calls_guarded_marks_branch_arms(self):
        def kernel(ctx):
            yield from ctx.cb_reserve_back(0, 1)
            if ctx.arg("flag"):
                yield from ctx.cb_reserve_back(1, 1)
        guarded = {const_int(c.operand(0, "cb_id")): g
                   for c, g in iter_calls_guarded(extract_trace(kernel).nodes)
                   if isinstance(c, Call)}
        assert guarded == {0: False, 1: True}

    def test_trace_is_cached_per_function(self):
        def kernel(ctx):
            yield from ctx.cb_reserve_back(0, 1)
        assert extract_trace(kernel) is extract_trace(kernel)
