"""Radix-2 FFT pencils: float32 mirror bit-exact, numpy.fft within ULP.

Two-level determinism contract: the device readback must be
*bit-identical* to :func:`fft_reference_bits` (a NumPy replay of the
exact float32 butterfly sequence), and that mirror must agree with
``numpy.fft`` computed in complex128 within the calibrated
:data:`FFT_ULP_BOUND` — accuracy and determinism asserted separately.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ops import FFT_ULP_BOUND, FftProblem, run_fft
from repro.ops.fft import (
    bit_reverse_indices,
    fft_reference_bits,
    twiddle_tables,
)


def _max_ulp_vs_numpy(y: np.ndarray, x: np.ndarray) -> float:
    """ULP distance of complex64 ``y`` from the complex128 numpy FFT,
    scaled per pencil by the spacing at its largest magnitude — the
    same measure run_fft enforces."""
    ref = np.fft.fft(x.astype(np.complex128), axis=0)
    scale = np.spacing(np.abs(ref).max(axis=0).astype(np.float32)
                       ).astype(np.float64)
    return float((np.abs(y - ref) / scale).max())


class TestProblem:
    def test_length_must_be_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            FftProblem(n=24)

    def test_batch_must_be_positive(self):
        with pytest.raises(ValueError):
            FftProblem(n=16, batch=0)

    def test_inputs_shape_and_dtype(self):
        x = FftProblem(n=16, batch=4, seed=2).inputs()
        assert x.shape == (16, 4) and x.dtype == np.complex64

    def test_flops_formula(self):
        p = FftProblem(n=8, batch=2)
        assert p.flops() == 10.0 * 4 * 3 * 2


class TestHelpers:
    def test_bit_reverse_is_an_involution(self):
        rev = bit_reverse_indices(16)
        assert np.array_equal(rev[rev], np.arange(16))

    def test_twiddles_are_unit_circle_points(self):
        twr, twi = twiddle_tables(32)
        assert twr.shape == twi.shape == (16,)
        np.testing.assert_allclose(twr ** 2 + twi ** 2, 1.0, atol=1e-6)
        assert twr[0] == 1.0 and twi[0] == 0.0


class TestReference:
    @settings(max_examples=15, deadline=None)
    @given(n=st.sampled_from([2, 4, 8, 16, 32, 64]),
           batch=st.integers(1, 6), seed=st.integers(0, 50))
    def test_mirror_within_ulp_bound_of_numpy(self, n, batch, seed):
        x = FftProblem(n=n, batch=batch, seed=seed).inputs()
        y = fft_reference_bits(x)
        assert _max_ulp_vs_numpy(y, x) <= FFT_ULP_BOUND

    def test_mirror_is_deterministic(self):
        x = FftProblem(n=32, batch=3, seed=9).inputs()
        a, b = fft_reference_bits(x), fft_reference_bits(x.copy())
        assert np.array_equal(a.view(np.uint64), b.view(np.uint64))

    def test_delta_transforms_to_all_ones(self):
        x = np.zeros((8, 1), dtype=np.complex64)
        x[0, 0] = 1.0
        y = fft_reference_bits(x)
        np.testing.assert_array_equal(y, np.ones((8, 1), np.complex64))


class TestDevice:
    def test_single_core_mirror_bit_exact(self):
        res = run_fft(FftProblem(n=32, batch=8))
        assert res.checked
        assert "mirror bit-exact" in res.check_detail
        assert res.kernel_time_s > 0 and res.fpu_ops > 0

    def test_multi_core_identical_to_single_core(self):
        p = FftProblem(n=16, batch=8, seed=3)
        r1 = run_fft(p, cores=(1, 1))
        r2 = run_fft(p, cores=(2, 2))
        assert r1.output_sha == r2.output_sha

    def test_more_cores_than_pencils_rejected(self):
        with pytest.raises(ValueError, match="cannot split"):
            run_fft(FftProblem(n=16, batch=2), cores=(2, 2))

    @settings(max_examples=6, deadline=None)
    @given(n=st.sampled_from([4, 8, 16, 32]), batch=st.integers(1, 6),
           seed=st.integers(0, 50))
    def test_device_bit_exact_vs_mirror(self, n, batch, seed):
        p = FftProblem(n=n, batch=batch, seed=seed)
        res = run_fft(p)                  # raises OpCheckError on drift
        mirror = fft_reference_bits(p.inputs())
        assert np.array_equal(res.output.view(np.uint64),
                              mirror.view(np.uint64))
