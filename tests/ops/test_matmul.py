"""Blocked SRAM BF16 matmul: bit-exact vs the NumPy reference.

The contract is *deterministic accumulation*: per-tile float32
products, sequential float32 accumulation over K in ascending tile
order, one BF16 round-to-nearest-even per output tile.  The device
execution must be bit-exact against :func:`matmul_reference_bits` for
any shape — including non-square and non-multiple-of-32 dimensions,
where the padded tiles carry zeros.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtypes.bf16 import bits_to_f32, f32_to_bits
from repro.ops import MatmulProblem, OpCheckError, run_matmul, sha16
from repro.ops.matmul import (
    TILE_DIM,
    matmul_reference_bits,
    tilize,
    untilize,
)


class TestProblem:
    def test_tile_counts_are_ceil_divisions(self):
        p = MatmulProblem(m=33, k=64, n=1)
        assert (p.mt, p.kt, p.nt) == (2, 2, 1)

    def test_flops_counts_padded_work(self):
        p = MatmulProblem(m=32, k=32, n=32)
        assert p.flops() == 2.0 * TILE_DIM ** 3

    def test_dimensions_must_be_positive(self):
        with pytest.raises(ValueError):
            MatmulProblem(m=0, k=32, n=32)

    def test_inputs_are_seeded_and_stable(self):
        a1, b1 = MatmulProblem(m=8, k=8, n=8, seed=5).inputs()
        a2, b2 = MatmulProblem(m=8, k=8, n=8, seed=5).inputs()
        assert np.array_equal(a1, a2) and np.array_equal(b1, b2)
        a3, _ = MatmulProblem(m=8, k=8, n=8, seed=6).inputs()
        assert not np.array_equal(a1, a3)


class TestTilize:
    def test_tilize_untilize_roundtrip(self):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 1 << 16, (64, 96)).astype(np.uint16)
        assert np.array_equal(untilize(tilize(bits), 64, 96), bits)

    def test_tilize_pads_partial_tiles_with_zero(self):
        bits = np.ones((5, 3), dtype=np.uint16)
        flat = tilize(bits)
        assert flat.size == TILE_DIM * TILE_DIM
        img = untilize(flat, TILE_DIM, TILE_DIM)
        assert np.array_equal(img[:5, :3], bits)
        assert not img[5:, :].any() and not img[:, 3:].any()


class TestReference:
    def test_single_tile_matches_plain_f32_matmul(self):
        p = MatmulProblem(m=32, k=32, n=32, seed=1)
        a_bits, b_bits = p.inputs()
        ref = matmul_reference_bits(a_bits, b_bits)
        plain = f32_to_bits(
            (bits_to_f32(a_bits) @ bits_to_f32(b_bits)).astype(np.float32))
        assert np.array_equal(ref, plain)

    def test_accumulation_order_is_ascending_k(self):
        # build the k-tile partial sums by hand and fold left-to-right
        p = MatmulProblem(m=32, k=96, n=32, seed=2)
        a_bits, b_bits = p.inputs()
        a, b = bits_to_f32(a_bits), bits_to_f32(b_bits)
        acc = None
        for kt in range(3):
            sl = slice(kt * TILE_DIM, (kt + 1) * TILE_DIM)
            prod = (a[:, sl] @ b[sl]).astype(np.float32)
            acc = prod if acc is None else (acc + prod).astype(np.float32)
        assert np.array_equal(matmul_reference_bits(a_bits, b_bits),
                              f32_to_bits(acc))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            matmul_reference_bits(np.zeros((4, 8), dtype=np.uint16),
                                  np.zeros((4, 8), dtype=np.uint16))


class TestDeviceBitExact:
    def test_single_core_square(self):
        res = run_matmul(MatmulProblem(m=64, k=64, n=64))
        assert res.checked and res.check_detail == "bit-exact"
        assert res.kernel_time_s > 0 and res.transfer_time_s > 0
        assert res.energy_j > 0 and res.fpu_ops > 0

    def test_multi_core_matches_single_core_bits(self):
        p = MatmulProblem(m=64, k=32, n=64, seed=4)
        r1 = run_matmul(p, cores=(1, 1))
        r2 = run_matmul(p, cores=(2, 2))
        assert r1.output_sha == r2.output_sha
        assert r2.checked

    def test_too_many_cores_rejected(self):
        with pytest.raises(ValueError, match="cannot split"):
            run_matmul(MatmulProblem(m=32, k=32, n=32), cores=(2, 2))

    @settings(max_examples=8, deadline=None)
    @given(m=st.integers(1, 70), k=st.integers(1, 70),
           n=st.integers(1, 70), seed=st.integers(0, 100))
    def test_device_bit_exact_any_shape(self, m, k, n, seed):
        """Non-square, non-multiple-of-32 shapes stay bit-exact."""
        p = MatmulProblem(m=m, k=k, n=n, seed=seed)
        res = run_matmul(p)               # raises OpCheckError on mismatch
        ref = matmul_reference_bits(*p.inputs())
        assert res.output_sha == sha16(ref)

    def test_check_failure_raises_opcheckerror(self, monkeypatch):
        import repro.ops.matmul as mm
        real = mm.matmul_reference_bits

        def corrupted(a_bits, b_bits):
            out = real(a_bits, b_bits).copy()
            out[0, 0] ^= 1
            return out

        monkeypatch.setattr(mm, "matmul_reference_bits", corrupted)
        with pytest.raises(OpCheckError, match="differ"):
            mm.run_matmul(MatmulProblem(m=32, k=32, n=32))
