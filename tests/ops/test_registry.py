"""Registry surface of the repro.ops library."""

import numpy as np
import pytest

from repro import ops
from repro.ops import OpSpec, get_op, list_ops, sha16


class TestRegistry:
    def test_three_ops_register_on_import(self):
        assert sorted(ops.OPS) == ["fft", "matmul", "stencil9"]

    def test_list_ops_is_sorted_by_name(self):
        names = [s.name for s in list_ops()]
        assert names == sorted(names)

    def test_get_op_returns_the_spec(self):
        spec = get_op("matmul")
        assert isinstance(spec, OpSpec)
        assert spec.name == "matmul"
        assert "matmul" in spec.summary.lower() or "bf16" in \
            spec.summary.lower()

    def test_get_op_unknown_raises_with_catalogue(self):
        with pytest.raises(KeyError, match="unknown op"):
            get_op("conv2d")

    def test_every_spec_is_fully_populated(self):
        for spec in list_ops():
            assert callable(spec.make_problem)
            assert callable(spec.run)
            assert callable(spec.reference)
            assert callable(spec.estimate)
            assert callable(spec.flops)
            assert spec.summary

    def test_make_problem_uniform_surface(self):
        # every op accepts (size, seed) with size=64 valid for all three
        for spec in list_ops():
            p = spec.make_problem(64, 3)
            assert p.seed == 3
            assert spec.flops(p) > 0

    def test_register_is_idempotent_per_name(self):
        spec = get_op("fft")
        before = dict(ops.OPS)
        ops.register(spec)
        assert ops.OPS == before


class TestSha16:
    def test_sha16_is_16_hex_chars(self):
        s = sha16(np.arange(8, dtype=np.uint16))
        assert len(s) == 16
        int(s, 16)

    def test_sha16_depends_on_bytes(self):
        a = np.arange(8, dtype=np.uint16)
        b = a.copy()
        b[0] ^= 1
        assert sha16(a) == sha16(a.copy())
        assert sha16(a) != sha16(b)

    def test_sha16_handles_noncontiguous(self):
        a = np.arange(64, dtype=np.uint16).reshape(8, 8)
        assert sha16(a[:, ::2]) == sha16(np.ascontiguousarray(a[:, ::2]))
