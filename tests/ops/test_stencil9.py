"""9-point stencil: bit-identical across every core decomposition.

The BF16 update chain is purely elementwise, so the readback must be
bit-identical to :func:`stencil9_reference_bits` — and therefore
identical across 1D and 2D decompositions — for any core grid.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ops import Stencil9Problem, run_stencil9
from repro.ops.stencil9 import stencil9_reference_bits


class TestProblem:
    def test_nx_must_be_tile_aligned(self):
        with pytest.raises(ValueError, match="multiple of 32"):
            Stencil9Problem(nx=48, ny=8)

    def test_ny_and_iters_must_be_positive(self):
        with pytest.raises(ValueError):
            Stencil9Problem(nx=32, ny=0)
        with pytest.raises(ValueError):
            Stencil9Problem(nx=32, ny=8, iters=0)

    def test_halo_grid_shape_and_seeding(self):
        p = Stencil9Problem(nx=32, ny=8, seed=7)
        g = p.halo_grid_bits()
        assert g.shape == (10, 34) and g.dtype == np.uint16
        assert np.array_equal(g, Stencil9Problem(nx=32, ny=8,
                                                 seed=7).halo_grid_bits())
        other = Stencil9Problem(nx=32, ny=8, seed=8).halo_grid_bits()
        assert not np.array_equal(g, other)

    def test_flops_formula(self):
        assert Stencil9Problem(nx=32, ny=4, iters=3).flops() == \
            9.0 * 32 * 4 * 3


class TestReference:
    def test_boundary_rows_are_untouched(self):
        p = Stencil9Problem(nx=32, ny=8, seed=1)
        g0 = p.halo_grid_bits()
        g1 = stencil9_reference_bits(g0, 3)
        assert np.array_equal(g1[0], g0[0])
        assert np.array_equal(g1[-1], g0[-1])
        assert np.array_equal(g1[:, 0], g0[:, 0])
        assert np.array_equal(g1[:, -1], g0[:, -1])

    def test_iterations_compose(self):
        p = Stencil9Problem(nx=32, ny=8, seed=2)
        g0 = p.halo_grid_bits()
        assert np.array_equal(
            stencil9_reference_bits(g0, 3),
            stencil9_reference_bits(stencil9_reference_bits(g0, 2), 1))


class TestDeviceDecompositions:
    def test_single_core_bit_exact(self):
        res = run_stencil9(Stencil9Problem(nx=32, ny=8))
        assert res.checked and res.check_detail == "bit-exact"
        assert res.kernel_time_s > 0

    @pytest.mark.parametrize("cores", [(2, 1), (4, 1), (1, 2), (2, 2)])
    def test_1d_and_2d_decompositions_identical(self, cores):
        p = Stencil9Problem(nx=64, ny=8, iters=2, seed=5)
        base = run_stencil9(p, cores=(1, 1))
        res = run_stencil9(p, cores=cores)
        assert res.output_sha == base.output_sha
        assert res.checked

    @settings(max_examples=5, deadline=None)
    @given(ny=st.integers(2, 12), iters=st.integers(1, 3),
           seed=st.integers(0, 50),
           cores=st.sampled_from([(1, 1), (2, 1), (1, 2), (2, 2)]))
    def test_any_decomposition_matches_reference(self, ny, iters, seed,
                                                 cores):
        p = Stencil9Problem(nx=64, ny=ny, iters=iters, seed=seed)
        res = run_stencil9(p, cores=cores)   # OpCheckError on drift
        ref = stencil9_reference_bits(p.halo_grid_bits(), iters)
        assert np.array_equal(res.output, ref[1:-1, 1:-1])
