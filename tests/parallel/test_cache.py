"""Content-addressed cache: keys, hits/misses, corruption fallback."""

from dataclasses import dataclass

import pytest

from repro.parallel import (JobKind, JobSpec, ResultCache,
                            canonical_config_json, job_key, register_kind,
                            resolve_cache, run_jobs)


@dataclass(frozen=True)
class CountConfig:
    """Config whose job counts executions via a marker file."""

    value: int = 0
    marker: str = ""     #: file appended to on every real execution


def _run_count(config, seed):
    with open(config.marker, "a") as fh:
        fh.write("x")
    return ({"double": config.value * 2}, {"events": config.value})


def _count_from_payload(config, seed, payload):
    return payload["double"]


register_kind(JobKind("_test_count", _run_count, _count_from_payload),
              replace=True)


class TestKeys:
    def test_key_is_stable(self):
        a = job_key("stream", CountConfig(value=3), 0, version="v1")
        b = job_key("stream", CountConfig(value=3), 0, version="v1")
        assert a == b

    def test_key_changes_with_config(self):
        a = job_key("stream", CountConfig(value=3), 0, version="v1")
        b = job_key("stream", CountConfig(value=4), 0, version="v1")
        assert a != b

    def test_key_changes_with_seed(self):
        a = job_key("stream", CountConfig(value=3), 0, version="v1")
        b = job_key("stream", CountConfig(value=3), 1, version="v1")
        assert a != b

    def test_key_changes_with_version(self):
        a = job_key("stream", CountConfig(value=3), 0, version="v1")
        b = job_key("stream", CountConfig(value=3), 0, version="v2")
        assert a != b

    def test_key_changes_with_kind(self):
        a = job_key("stream", CountConfig(value=3), 0, version="v1")
        b = job_key("campaign", CountConfig(value=3), 0, version="v1")
        assert a != b

    def test_key_changes_with_env_snapshot(self):
        # A cache hit bypasses the worker-side env assertion, so specs
        # planned under different toggles must never share an entry.
        a = job_key("stream", CountConfig(value=3), 0, version="v1",
                    env=(("REPRO_ENGINE_FASTPATH", None),))
        b = job_key("stream", CountConfig(value=3), 0, version="v1",
                    env=(("REPRO_ENGINE_FASTPATH", "0"),))
        assert a != b

    def test_spec_key_includes_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE_FASTPATH", raising=False)
        plain = JobSpec("_test_count", CountConfig(value=3))
        monkeypatch.setenv("REPRO_ENGINE_FASTPATH", "0")
        toggled = JobSpec("_test_count", CountConfig(value=3))
        assert plain.key("v1") != toggled.key("v1")

    def test_canonical_json_sorts_and_normalises(self):
        assert canonical_config_json({"b": (1, 2), "a": 3}) \
            == '{"a":3,"b":[1,2]}'

    def test_non_jsonable_config_rejected(self):
        with pytest.raises(TypeError, match="non-canonical"):
            canonical_config_json({"x": object()})


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        store = ResultCache(str(tmp_path))
        cfg = CountConfig(value=3)
        key = job_key("_test_count", cfg, 0, version="v1")
        assert store.get(key) is None
        store.put(key, "_test_count", cfg, 0, {"data": {"double": 6}})
        assert store.get(key) == {"data": {"double": 6}}
        assert store.hits == 1 and store.misses == 1

    def test_corrupted_entry_warns_and_misses(self, tmp_path):
        store = ResultCache(str(tmp_path))
        cfg = CountConfig(value=3)
        key = job_key("_test_count", cfg, 0, version="v1")
        store.put(key, "_test_count", cfg, 0, {"data": {}})
        path = store._path(key)
        with open(path, "w") as fh:
            fh.write("{ not json")
        with pytest.warns(RuntimeWarning, match="corrupted sweep-cache"):
            assert store.get(key) is None
        import os
        assert not os.path.exists(path)  # dropped, next put rewrites

    @pytest.mark.parametrize("root", ["null", "[]", '"x"', "3"])
    def test_non_object_root_treated_as_corruption(self, tmp_path, root):
        # Valid JSON whose root is not an object must be dropped like
        # any other corruption, never escape as AttributeError.
        store = ResultCache(str(tmp_path))
        key = job_key("_test_count", CountConfig(), 0, version="v1")
        path = store._path(key)
        import os
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as fh:
            fh.write(root)
        with pytest.warns(RuntimeWarning, match="corrupted sweep-cache"):
            assert store.get(key) is None
        assert not os.path.exists(path)

    def test_wrong_schema_treated_as_corruption(self, tmp_path):
        store = ResultCache(str(tmp_path))
        key = job_key("_test_count", CountConfig(), 0, version="v1")
        store.put(key, "_test_count", CountConfig(), 0, {"data": {}})
        import json
        path = store._path(key)
        with open(path) as fh:
            doc = json.load(fh)
        doc["schema"] = "something-else/9"
        with open(path, "w") as fh:
            json.dump(doc, fh)
        with pytest.warns(RuntimeWarning, match="corrupted sweep-cache"):
            assert store.get(key) is None


class TestEngineCaching:
    def _specs(self, tmp_path, values):
        marker = str(tmp_path / "executions")
        return ([JobSpec("_test_count", CountConfig(value=v, marker=marker))
                 for v in values], marker)

    def _executions(self, marker):
        try:
            with open(marker) as fh:
                return len(fh.read())
        except FileNotFoundError:
            return 0

    def test_second_run_hits(self, tmp_path):
        specs, marker = self._specs(tmp_path, [1, 2, 3])
        cache_dir = str(tmp_path / "cache")
        first = run_jobs(specs, jobs=1, cache=cache_dir)
        assert self._executions(marker) == 3
        assert all(not o.record.cached for o in first)
        second = run_jobs(specs, jobs=1, cache=cache_dir)
        assert self._executions(marker) == 3   # nothing recomputed
        assert all(o.record.cached for o in second)
        assert [o.result for o in second] == [o.result for o in first]
        assert [o.record.obs for o in second] == \
            [o.record.obs for o in first]

    def test_config_change_misses(self, tmp_path):
        specs, marker = self._specs(tmp_path, [1])
        cache_dir = str(tmp_path / "cache")
        run_jobs(specs, jobs=1, cache=cache_dir)
        changed, _ = self._specs(tmp_path, [2])
        run_jobs(changed, jobs=1, cache=cache_dir)
        assert self._executions(marker) == 2

    def test_seed_change_misses(self, tmp_path):
        marker = str(tmp_path / "executions")
        cfg = CountConfig(value=1, marker=marker)
        cache_dir = str(tmp_path / "cache")
        run_jobs([JobSpec("_test_count", cfg, seed=0)], cache=cache_dir)
        run_jobs([JobSpec("_test_count", cfg, seed=1)], cache=cache_dir)
        assert self._executions(marker) == 2

    def test_corrupted_entry_recomputes(self, tmp_path):
        from repro.parallel import cache_version
        specs, marker = self._specs(tmp_path, [5])
        cache_dir = str(tmp_path / "cache")
        run_jobs(specs, jobs=1, cache=cache_dir)
        store = ResultCache(cache_dir)
        path = store._path(specs[0].key(cache_version()))
        with open(path, "w") as fh:
            fh.write("garbage")
        with pytest.warns(RuntimeWarning, match="corrupted sweep-cache"):
            again = run_jobs(specs, jobs=1, cache=cache_dir)
        assert self._executions(marker) == 2   # recomputed, not fatal
        assert again[0].record.ok and not again[0].record.cached
        assert again[0].result == 10

    def test_failed_jobs_never_cached(self, tmp_path):
        from tests.parallel.test_engine import ToyConfig
        cache_dir = str(tmp_path / "cache")
        bad = JobSpec("_test_toy", ToyConfig(value=7, mode="raise"))
        first = run_jobs([bad], jobs=1, cache=cache_dir)
        assert not first[0].record.ok
        second = run_jobs([bad], jobs=1, cache=cache_dir)
        assert not second[0].record.cached   # failure was not stored


class TestSizeCap:
    """The LRU size cap (REPRO_SWEEP_CACHE_MAX_MB): prune on write."""

    def _put(self, store, value, mtime=None):
        import os
        cfg = CountConfig(value=value)
        key = job_key("_test_count", cfg, 0, version="v1")
        store.put(key, "_test_count", cfg, 0, {"data": {"double": value}})
        path = store._path(key)
        if mtime is not None and os.path.exists(path):
            os.utime(path, (mtime, mtime))
        return key

    def test_unbounded_by_default_argument(self, tmp_path):
        store = ResultCache(str(tmp_path), max_bytes=0)
        assert store.max_bytes is None
        for v in range(10):
            self._put(store, v)
        assert store.evictions == 0

    def test_oldest_entries_evicted_first(self, tmp_path):
        import os
        store = ResultCache(str(tmp_path), max_bytes=10**9)
        k1 = self._put(store, 1, mtime=1000.0)
        k2 = self._put(store, 2, mtime=2000.0)
        k3 = self._put(store, 3, mtime=3000.0)
        entry = os.path.getsize(store._path(k1))
        # Cap to two entries and write a fourth: the two oldest go.
        store.max_bytes = int(entry * 2.5)
        k4 = self._put(store, 4)
        assert store.get(k1) is None and store.get(k2) is None
        assert store.get(k3) is not None and store.get(k4) is not None
        assert store.evictions == 2

    def test_hit_refreshes_recency(self, tmp_path):
        import os
        store = ResultCache(str(tmp_path), max_bytes=10**9)
        k1 = self._put(store, 1, mtime=1000.0)
        k2 = self._put(store, 2, mtime=2000.0)
        # Touch the older entry via a hit: it must now outlive k2.
        assert store.get(k1) is not None
        entry = os.path.getsize(store._path(k1))
        store.max_bytes = int(entry * 1.5)
        k3 = self._put(store, 3)
        assert store.get(k1) is None or store.get(k2) is None
        assert store.get(k2) is None          # k2 became least recent
        assert store.get(k3) is not None

    def test_prune_skips_foreign_and_vanished_files(self, tmp_path):
        import os
        store = ResultCache(str(tmp_path), max_bytes=1)
        k1 = self._put(store, 1)
        # Foreign files (tmp leftovers, notes) are never deleted.
        shard = os.path.dirname(store._path(k1))
        keep = os.path.join(shard, "entry.json.tmp999")
        with open(keep, "w") as fh:
            fh.write("partial write")
        store.prune()
        assert os.path.exists(keep)
        assert store.get(k1) is None          # the entry itself pruned

    def test_env_var_parsing(self, monkeypatch, tmp_path):
        from repro.parallel.cache import DEFAULT_MAX_MB
        monkeypatch.delenv("REPRO_SWEEP_CACHE_MAX_MB", raising=False)
        assert ResultCache(str(tmp_path)).max_bytes \
            == int(DEFAULT_MAX_MB * 1024 * 1024)
        monkeypatch.setenv("REPRO_SWEEP_CACHE_MAX_MB", "2")
        assert ResultCache(str(tmp_path)).max_bytes == 2 * 1024 * 1024
        monkeypatch.setenv("REPRO_SWEEP_CACHE_MAX_MB", "0")
        assert ResultCache(str(tmp_path)).max_bytes is None
        monkeypatch.setenv("REPRO_SWEEP_CACHE_MAX_MB", "-5")
        assert ResultCache(str(tmp_path)).max_bytes is None
        monkeypatch.setenv("REPRO_SWEEP_CACHE_MAX_MB", "lots")
        with pytest.warns(RuntimeWarning, match="MAX_MB"):
            assert ResultCache(str(tmp_path)).max_bytes \
                == int(DEFAULT_MAX_MB * 1024 * 1024)

    def test_capped_cache_still_correct_through_engine(self, tmp_path):
        """A tiny cap degrades hit rate, never correctness."""
        marker = str(tmp_path / "executions")
        cache = ResultCache(str(tmp_path / "cache"), max_bytes=1)
        specs = [JobSpec("_test_count",
                         CountConfig(value=v, marker=marker))
                 for v in (1, 2, 3)]
        first = run_jobs(specs, jobs=1, cache=cache)
        second = run_jobs(specs, jobs=1, cache=cache)
        assert [o.result for o in first] == [o.result for o in second] \
            == [2, 4, 6]


class TestCacheVersion:
    """Dirty trees must be content-addressed, never share one namespace."""

    @pytest.fixture
    def repo(self, tmp_path):
        import shutil
        import subprocess
        if shutil.which("git") is None:
            pytest.skip("git not available")

        def git(*args):
            subprocess.run(
                ["git", "-c", "user.name=t", "-c", "user.email=t@t",
                 *args],
                cwd=tmp_path, capture_output=True, text=True, check=True)

        git("init", "-q")
        (tmp_path / "a.py").write_text("x = 1\n")
        git("add", "a.py")
        git("commit", "-qm", "init")
        return tmp_path

    def test_clean_tree_is_plain_describe(self, repo):
        from repro.parallel.cache import _describe_tree
        version = _describe_tree(str(repo))
        assert version is not None and version.startswith("git:")
        assert "-dirty" not in version

    def test_each_dirty_state_gets_its_own_version(self, repo):
        from repro.parallel.cache import _describe_tree
        clean = _describe_tree(str(repo))
        (repo / "a.py").write_text("x = 2\n")
        dirty_a = _describe_tree(str(repo))
        (repo / "a.py").write_text("x = 3\n")
        dirty_b = _describe_tree(str(repo))
        assert "-dirty+" in dirty_a and "-dirty+" in dirty_b
        assert len({clean, dirty_a, dirty_b}) == 3

    def test_untracked_file_content_changes_version(self, repo):
        from repro.parallel.cache import _describe_tree
        clean = _describe_tree(str(repo))
        (repo / "new_kind.py").write_text("y = 1\n")
        with_new = _describe_tree(str(repo))
        (repo / "new_kind.py").write_text("y = 2\n")
        with_edit = _describe_tree(str(repo))
        assert len({clean, with_new, with_edit}) == 3


class TestResolution:
    def test_false_disables(self):
        assert resolve_cache(False) is None

    def test_none_is_off_without_env(self):
        assert resolve_cache(None) is None

    def test_none_enabled_by_env_path(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path / "c"))
        store = resolve_cache(None)
        assert store is not None and store.root == str(tmp_path / "c")

    def test_env_kill_switch_beats_everything(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SWEEP_CACHE", "0")
        assert resolve_cache(True) is None
        assert resolve_cache(str(tmp_path)) is None
        assert resolve_cache(ResultCache(str(tmp_path))) is None

    def test_string_sets_root(self, tmp_path):
        store = resolve_cache(str(tmp_path))
        assert store.root == str(tmp_path)
