"""Engine contract: ordering, -j1 == -jN, crash isolation, job counts."""

import os
from dataclasses import dataclass

import pytest

from repro.parallel import (JobKind, JobSpec, SweepJobError, outcomes_trace,
                            register_kind, render_job_report, resolve_jobs,
                            run_jobs, set_default_jobs, summary_line,
                            sweep_results)
from repro.streaming import StreamConfig


@dataclass(frozen=True)
class ToyConfig:
    """Config for the test-only job kind below."""

    value: int = 0
    mode: str = "ok"        #: ok | raise | exit


def _run_toy(config, seed):
    if config.mode == "raise":
        raise ValueError(f"toy job {config.value} asked to fail")
    if config.mode == "exit":    # hard worker death (no exception path)
        os._exit(17)
    return ({"square": config.value * config.value, "seed": seed},
            {"events": config.value, "sim_now": float(config.value)})


def _toy_from_payload(config, seed, payload):
    return payload["square"]


# replace=True so pytest re-imports (e.g. --forked, reruns) don't clash
register_kind(JobKind("_test_toy", _run_toy, _toy_from_payload),
              replace=True)


def _toy_specs(values, mode="ok"):
    return [JobSpec("_test_toy", ToyConfig(value=v, mode=mode), seed=i)
            for i, v in enumerate(values)]


class TestOrdering:
    def test_results_in_submission_order_sequential(self):
        outcomes = run_jobs(_toy_specs([5, 1, 4, 2]), jobs=1)
        assert [o.result for o in outcomes] == [25, 1, 16, 4]
        assert [o.record.index for o in outcomes] == [0, 1, 2, 3]

    def test_results_in_submission_order_parallel(self):
        outcomes = run_jobs(_toy_specs([5, 1, 4, 2, 9, 3]), jobs=3)
        assert [o.result for o in outcomes] == [25, 1, 16, 4, 81, 9]
        assert all(o.record.worker is not None for o in outcomes)

    def test_sequential_runs_in_process(self):
        outcomes = run_jobs(_toy_specs([2]), jobs=1)
        assert outcomes[0].record.worker is None


class TestDeterminism:
    def test_parallel_matches_sequential_stream_jobs(self):
        configs = [StreamConfig(rows=32, row_elems=256, page_size=ps,
                                replication=r)
                   for ps in (None, 2048) for r in (0, 4)]
        specs = [JobSpec("stream", cfg) for cfg in configs]
        ref = run_jobs(specs, jobs=1)
        got = run_jobs(specs, jobs=3)
        for a, b in zip(ref, got):
            assert b.result.runtime_s == a.result.runtime_s
            assert b.result.read_requests == a.result.read_requests
            assert b.result.bytes_written == a.result.bytes_written
            assert b.record.obs == a.record.obs  # events + sim_now exact

    def test_oversubscribed_jobs_still_identical(self):
        # explicit -j beyond cpu_count is honoured; results can't change
        specs = _toy_specs(list(range(6)))
        ref = [o.result for o in run_jobs(specs, jobs=1)]
        got = [o.result for o in run_jobs(specs, jobs=6)]
        assert got == ref


class TestFailureIsolation:
    def test_exception_isolates_one_job(self):
        specs = _toy_specs([1, 2, 3])
        bad = JobSpec("_test_toy", ToyConfig(value=7, mode="raise"))
        outcomes = run_jobs(specs[:2] + [bad] + specs[2:], jobs=2)
        assert [o.record.ok for o in outcomes] == [True, True, False, True]
        failed = outcomes[2]
        assert failed.result is None
        assert "ValueError" in failed.record.error
        assert "toy job 7 asked to fail" in failed.record.error

    def test_worker_death_isolates_one_job(self):
        specs = _toy_specs([1, 2])
        bad = JobSpec("_test_toy", ToyConfig(value=8, mode="exit"))
        outcomes = run_jobs([specs[0], bad, specs[1]], jobs=2)
        assert [o.record.ok for o in outcomes] == [True, False, True]
        assert "exit code 17" in outcomes[1].record.error
        assert [o.result for o in outcomes] == [1, None, 4]

    def test_strict_sweep_raises_with_job_names(self):
        bad = JobSpec("_test_toy", ToyConfig(value=7, mode="raise"), seed=3)
        with pytest.raises(SweepJobError) as err:
            sweep_results(_toy_specs([1]) + [bad], jobs=1)
        assert "seed 3" in str(err.value)
        assert len(err.value.failures) == 1

    def test_non_strict_sweep_returns_none_for_failures(self):
        bad = JobSpec("_test_toy", ToyConfig(value=7, mode="raise"))
        results = sweep_results(_toy_specs([3]) + [bad], jobs=1,
                                strict=False)
        assert results == [9, None]

    def test_failures_use_fault_plane_vocabulary(self):
        bad = JobSpec("_test_toy", ToyConfig(value=7, mode="raise"))
        outcomes = run_jobs([bad] + _toy_specs([2]), jobs=1)
        trace = outcomes_trace(outcomes)
        assert len(trace) == 1
        event = trace.events[0]
        assert event.kind == "sweep.job"
        assert event.action == "isolated"
        assert event.t == -1.0


class TestJobResolution:
    def test_default_is_sequential(self):
        assert resolve_jobs(None) == 1

    def test_explicit_value(self):
        assert resolve_jobs(3) == 3

    def test_zero_means_all_cores(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_session_default(self):
        set_default_jobs(5)
        try:
            assert resolve_jobs(None) == 5
            assert resolve_jobs(2) == 2  # explicit wins
        finally:
            set_default_jobs(None)

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert resolve_jobs(None) == 4


class TestObservability:
    def test_report_and_summary_render(self):
        outcomes = run_jobs(_toy_specs([2, 3]), jobs=2)
        report = render_job_report(outcomes)
        assert "_test_toy" in report and "ok" in report
        line = summary_line(outcomes, 0.5, jobs=2)
        assert "n=2" in line and "jobs=2" in line and "failures=0" in line

    def test_obs_identical_across_j(self):
        specs = _toy_specs([3, 5])
        seq = run_jobs(specs, jobs=1)
        par = run_jobs(specs, jobs=2)
        assert [o.record.obs for o in seq] == [o.record.obs for o in par]
