"""Satellite guard: workers must run under the *planned* environment.

``REPRO_ENGINE_FASTPATH`` changes which simulator code path executes
(and therefore ``events_processed``); a worker silently inheriting a
drifted value would produce different observability numbers than the
``-j 1`` reference.  The snapshot in :class:`JobSpec` plus the assert in
``execute_spec`` make that impossible — these tests pin the behaviour.
"""

import os
from dataclasses import dataclass

import pytest

from repro.parallel import (EnvDriftError, JobKind, JobSpec, SNAPSHOT_KEYS,
                            register_kind, run_jobs, snapshot_env)
from repro.parallel.jobs import _assert_env
from repro.streaming import StreamConfig


@dataclass(frozen=True)
class EnvProbe:
    """Config for a job kind that reports the env it actually ran under."""

    token: int = 0


def _run_probe(config, seed):
    return ({"fastpath": os.environ.get("REPRO_ENGINE_FASTPATH")}, {})


register_kind(JobKind("_test_envprobe", _run_probe,
                      lambda cfg, seed, payload: payload["fastpath"]),
              replace=True)


def _stream_specs():
    configs = [StreamConfig(rows=32, row_elems=256, replication=r)
               for r in (0, 2, 4, 8)]
    return [JobSpec("stream", cfg) for cfg in configs]


def _invariants(outcomes):
    return [(o.result.runtime_s, o.result.read_requests, o.record.obs)
            for o in outcomes]


class TestSnapshot:
    def test_snapshot_covers_semantic_toggles(self):
        assert "REPRO_ENGINE_FASTPATH" in SNAPSHOT_KEYS

    def test_snapshot_captures_current_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_FASTPATH", "0")
        assert dict(snapshot_env())["REPRO_ENGINE_FASTPATH"] == "0"
        monkeypatch.delenv("REPRO_ENGINE_FASTPATH")
        assert dict(snapshot_env())["REPRO_ENGINE_FASTPATH"] is None

    def test_assert_env_detects_drift(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_FASTPATH", "1")
        snap = snapshot_env()
        monkeypatch.setenv("REPRO_ENGINE_FASTPATH", "0")
        with pytest.raises(EnvDriftError):
            _assert_env(snap)


class TestMixedParentEnv:
    """The ISSUE's acceptance scenario: plan, drift the parent, run -j 4."""

    def test_parallel_reproduces_sequential_despite_drift(self, monkeypatch):
        # Plan the sweep with the fastpath ON (the default).
        monkeypatch.delenv("REPRO_ENGINE_FASTPATH", raising=False)
        specs = _stream_specs()
        ref = _invariants(run_jobs(specs, jobs=1))

        # The parent's environment drifts before execution — a worker
        # that forked *now* would inherit fastpath OFF.
        monkeypatch.setenv("REPRO_ENGINE_FASTPATH", "0")
        got = _invariants(run_jobs(specs, jobs=4))
        assert got == ref

        # ...and the drifted parent value itself was not clobbered.
        assert os.environ["REPRO_ENGINE_FASTPATH"] == "0"

    def test_workers_run_under_snapshot_not_parent_env(self, monkeypatch):
        # Direct probe: jobs planned with the toggle unset must see it
        # unset inside the worker even though the forked parent has since
        # set it — i.e. the snapshot wins over the inherited environment.
        monkeypatch.delenv("REPRO_ENGINE_FASTPATH", raising=False)
        specs = [JobSpec("_test_envprobe", EnvProbe(token=i))
                 for i in range(4)]
        monkeypatch.setenv("REPRO_ENGINE_FASTPATH", "0")
        outcomes = run_jobs(specs, jobs=4)
        assert [o.result for o in outcomes] == [None] * 4

    def test_sequential_restores_parent_env(self, monkeypatch):
        # -j 1 applies each spec's snapshot in-process; afterwards the
        # parent environment must be exactly what it was before.
        monkeypatch.delenv("REPRO_ENGINE_FASTPATH", raising=False)
        specs = _stream_specs()
        monkeypatch.setenv("REPRO_ENGINE_FASTPATH", "0")
        run_jobs(specs, jobs=1)
        assert os.environ["REPRO_ENGINE_FASTPATH"] == "0"
