"""Calibration provenance tests: each constant re-derives from the paper.

These tests repeat the arithmetic in the calibration docstring so the
derivations cannot drift from the constants.
"""

import pytest

from repro.perfmodel.calibration import DEFAULT_COSTS, CostModel

# The streaming problem behind Tables III-VII.
_TOTAL_BYTES = 4096 * 4096 * 4          # 67.11 MB
_REQS_4B = _TOTAL_BYTES // 4            # 16.78 M requests at 4-byte batches


class TestDerivations:
    def test_read_issue_from_table3(self):
        # 4 B no-sync read: 1.761 s over 16.78 M requests
        assert DEFAULT_COSTS.read_issue == pytest.approx(
            1.761 / _REQS_4B, rel=0.02)

    def test_read_latency_from_table3(self):
        # 4 B sync read 12.659 s => 754 ns/request minus the issue cost
        per_req = 12.659 / _REQS_4B
        assert (DEFAULT_COSTS.read_issue + DEFAULT_COSTS.read_latency
                ) == pytest.approx(per_req, rel=0.02)

    def test_write_issue_from_table3(self):
        assert DEFAULT_COSTS.write_issue == pytest.approx(
            0.411 / _REQS_4B, rel=0.02)

    def test_write_latency_from_table3(self):
        per_req = 2.873 / _REQS_4B
        assert (DEFAULT_COSTS.write_issue + DEFAULT_COSTS.write_latency
                ) == pytest.approx(per_req, rel=0.02)

    def test_noncontig_read_from_table4(self):
        assert DEFAULT_COSTS.noncontig_read == pytest.approx(
            (1.969 - 1.761) / _REQS_4B, rel=0.05)

    def test_noncontig_write_from_table4_64B(self):
        reqs_64 = _TOTAL_BYTES // 64
        assert DEFAULT_COSTS.noncontig_write == pytest.approx(
            (0.074 - 0.027) / reqs_64, rel=0.05)

    def test_link_bw_from_table3(self):
        assert DEFAULT_COSTS.noc_link_bw == pytest.approx(
            _TOTAL_BYTES / 0.011, rel=0.02)

    def test_interleaved_link_is_double(self):
        assert DEFAULT_COSTS.noc_link_bw_interleaved == pytest.approx(
            2 * DEFAULT_COSTS.noc_link_bw, rel=1e-6)

    def test_bank_bw_from_table7(self):
        # >= 2 cores on one bank: 2 x 67.11 MB in 0.005 s, rounded to the
        # nominal 25.6 GB/s
        measured = 2 * _TOTAL_BYTES / 0.005
        assert DEFAULT_COSTS.dram_bank_bw == pytest.approx(measured, rel=0.05)

    def test_column_bw_from_table8(self):
        # 108 cores: 22.06 GPt/s x 4 B/pt over 12 columns
        assert DEFAULT_COSTS.noc_column_bw == pytest.approx(
            22.06e9 * 4 / 12, rel=0.01)

    def test_aggregate_is_all_banks(self):
        c = DEFAULT_COSTS
        assert c.noc_aggregate_bw == pytest.approx(
            c.n_dram_banks * c.dram_bank_bw, rel=1e-6)

    def test_memcpy_rate_from_section5(self):
        assert DEFAULT_COSTS.memcpy_rate == pytest.approx(
            _TOTAL_BYTES / 0.106, rel=0.01)

    def test_memcpy_call_from_table2(self):
        # memcpy-only 0.014 GPt/s on 512x512: 18.72 ms/iter for 32768
        # 64-byte row copies
        c = DEFAULT_COSTS
        iter_time = 512 * 512 / 0.014e9
        calls = 256 * 128          # 256 batches x 128 row copies
        nbytes = 256 * 4 * 2048    # 4 CB tiles per batch
        modelled = calls * c.memcpy_call + nbytes / c.memcpy_rate
        assert modelled == pytest.approx(iter_time, rel=0.05)

    def test_fpu_op_from_table2(self):
        # compute-only 1.387 GPt/s: 8 tile ops + ~16 CB handshakes per
        # 1024-point batch
        c = DEFAULT_COSTS
        per_batch = 1024 / 1.387e9
        modelled = 8 * c.fpu_op + 16 * c.cb_op
        assert modelled == pytest.approx(per_batch, rel=0.05)

    def test_skeleton_from_table2(self):
        # all-off 7.574 GPt/s => ~135 ns per batch of 1024 points
        assert DEFAULT_COSTS.core_loop_batch == pytest.approx(
            1024 / 7.574e9, rel=0.02)

    def test_card_power_range(self):
        c = DEFAULT_COSTS
        for n in (1, 8, 54, 108):
            assert 50.0 <= c.card_power_w(n) <= 55.0

    def test_geometry(self):
        c = DEFAULT_COSTS
        assert c.grid_width * c.grid_height == 120
        assert c.n_worker_cores == 108
        assert c.n_dram_banks == 8
        assert c.sram_bytes == 1 << 20
        assert c.dram_alignment * 8 == 256  # 256-bit rule


class TestHelpers:
    def test_with_overrides(self):
        c2 = DEFAULT_COSTS.with_overrides(fpu_op=1e-9)
        assert c2.fpu_op == 1e-9
        assert DEFAULT_COSTS.fpu_op != 1e-9  # frozen original untouched

    def test_read_request_time_components(self):
        c = DEFAULT_COSTS
        base = c.read_request_time(1024)
        assert c.read_request_time(1024, sync=True) == pytest.approx(
            base + c.read_latency)
        assert c.read_request_time(1024, contiguous=False) == pytest.approx(
            base + c.noncontig_read)
        assert c.read_request_time(1024, pages=3) > base

    def test_write_request_time_components(self):
        c = DEFAULT_COSTS
        base = c.write_request_time(1024)
        assert c.write_request_time(1024, sync=True) > base
        assert c.write_request_time(1024, contiguous=False) > base

    def test_memcpy_time_misaligned(self):
        c = DEFAULT_COSTS
        assert c.memcpy_time(4096, misaligned=True) > c.memcpy_time(4096)

    def test_replay_cheaper(self):
        c = DEFAULT_COSTS
        assert c.read_request_time(16384, replay=True) < \
            c.read_request_time(16384)
