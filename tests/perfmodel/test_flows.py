"""Max-min fairness tests: exact cases + properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perfmodel.flows import FlowNetwork, max_min_fair_rates


class TestExactCases:
    def test_single_bottleneck_equal_share(self):
        rates = max_min_fair_rates(
            {"link": 12.0}, {"a": ["link"], "b": ["link"], "c": ["link"]})
        assert all(r == pytest.approx(4.0) for r in rates.values())

    def test_classic_three_flow_example(self):
        """Two links; one flow crosses both: textbook max-min result."""
        rates = max_min_fair_rates(
            {"l1": 10.0, "l2": 10.0},
            {"long": ["l1", "l2"], "a": ["l1"], "b": ["l2"]})
        assert rates["long"] == pytest.approx(5.0)
        assert rates["a"] == pytest.approx(5.0)
        assert rates["b"] == pytest.approx(5.0)

    def test_unequal_links(self):
        rates = max_min_fair_rates(
            {"l1": 2.0, "l2": 10.0},
            {"long": ["l1", "l2"], "b": ["l2"]})
        # long is capped by l1 alone (b does not cross it); b takes the rest
        assert rates["long"] == pytest.approx(2.0)
        assert rates["b"] == pytest.approx(8.0)

    def test_demand_bounded(self):
        rates = max_min_fair_rates(
            {"link": 10.0}, {"small": ["link"], "big": ["link"]},
            {"small": 1.0})
        assert rates["small"] == pytest.approx(1.0)
        assert rates["big"] == pytest.approx(9.0)

    def test_all_demands_satisfiable(self):
        rates = max_min_fair_rates(
            {"link": 100.0}, {"a": ["link"], "b": ["link"]},
            {"a": 3.0, "b": 4.0})
        assert rates["a"] == pytest.approx(3.0)
        assert rates["b"] == pytest.approx(4.0)

    def test_no_flows(self):
        assert max_min_fair_rates({"l": 1.0}, {}) == {}


class TestNetworkBuilder:
    def test_duplicate_resource(self):
        net = FlowNetwork()
        net.add_resource("l", 1.0)
        with pytest.raises(ValueError):
            net.add_resource("l", 2.0)

    def test_unknown_resource_in_flow(self):
        net = FlowNetwork()
        with pytest.raises(KeyError):
            net.add_flow("f", ["nope"])

    def test_flow_needs_resources(self):
        net = FlowNetwork()
        net.add_resource("l", 1.0)
        with pytest.raises(ValueError):
            net.add_flow("f", [])

    def test_solve(self):
        net = FlowNetwork()
        net.add_resource("l", 6.0)
        net.add_flow("a", ["l"])
        net.add_flow("b", ["l"], demand=1.0)
        rates = net.solve()
        assert rates["b"] == pytest.approx(1.0)
        assert rates["a"] == pytest.approx(5.0)

    def test_invalid_params(self):
        net = FlowNetwork()
        with pytest.raises(ValueError):
            net.add_resource("x", 0.0)
        net.add_resource("l", 1.0)
        net.add_flow("a", ["l"])
        with pytest.raises(ValueError):
            net.add_flow("a", ["l"])
        with pytest.raises(ValueError):
            net.add_flow("b", ["l"], demand=0.0)


@st.composite
def networks(draw):
    n_res = draw(st.integers(1, 4))
    caps = {f"r{i}": draw(st.floats(1.0, 100.0)) for i in range(n_res)}
    n_flows = draw(st.integers(1, 6))
    flows = {}
    demands = {}
    for i in range(n_flows):
        k = draw(st.integers(1, n_res))
        flows[f"f{i}"] = draw(st.permutations(sorted(caps)))[:k]
        if draw(st.booleans()):
            demands[f"f{i}"] = draw(st.floats(0.1, 50.0))
    return caps, flows, demands


@settings(max_examples=100, deadline=None)
@given(networks())
def test_max_min_properties(net):
    """Feasibility, demand respect, and non-starvation hold always."""
    caps, flows, demands = net
    rates = max_min_fair_rates(caps, flows, demands)
    # feasibility: no resource over-committed
    for r, c in caps.items():
        used = sum(rates[f] for f, rs in flows.items() if r in rs)
        assert used <= c * (1 + 1e-6)
    # demands respected
    for f, d in demands.items():
        assert rates[f] <= d * (1 + 1e-6)
    # non-starvation: every flow gets something
    for f in flows:
        assert rates[f] > 0
    # Pareto efficiency for unbounded flows: each either hits a saturated
    # resource or its demand.
    for f, rs in flows.items():
        at_demand = f in demands and rates[f] >= demands[f] * (1 - 1e-6)
        saturated = any(
            sum(rates[g] for g, gs in flows.items() if r in gs)
            >= caps[r] * (1 - 1e-6)
            for r in rs)
        assert at_demand or saturated
