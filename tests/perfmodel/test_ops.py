"""Calibrated roofline/energy estimates for the op library."""

import pytest

from repro.ops import FftProblem, MatmulProblem, Stencil9Problem
from repro.perfmodel.calibration import DEFAULT_COSTS
from repro.perfmodel.ops import (
    OpEstimate,
    estimate_op,
    fft_estimate,
    matmul_estimate,
    op_service_time,
    stencil9_estimate,
)


class TestEstimateShape:
    @pytest.mark.parametrize("fn,problem", [
        (matmul_estimate, MatmulProblem(m=64, k=64, n=64)),
        (fft_estimate, FftProblem(n=64, batch=16)),
        (stencil9_estimate, Stencil9Problem(nx=64, ny=64)),
    ])
    def test_fields_are_consistent(self, fn, problem):
        est = fn(problem, (1, 1))
        assert isinstance(est, OpEstimate)
        assert est.compute_s > 0 and est.memory_s > 0
        assert est.roofline_s == max(est.compute_s, est.memory_s)
        # overlap-loss combination: bounded by sum, at least the max
        assert est.roofline_s <= est.time_s <= est.compute_s + est.memory_s
        assert 0 < est.roofline_frac <= 1.0
        assert est.gflops <= est.roofline_gflops
        assert est.energy_j == pytest.approx(est.power_w * est.time_s)
        assert est.bytes_in > 0 and est.bytes_out > 0

    def test_to_row_is_json_friendly(self):
        import json
        est = matmul_estimate(MatmulProblem(m=64, k=64, n=64), (2, 2))
        row = est.to_row()
        json.dumps(row)
        assert row["op"] == "matmul" and row["cores"] == [2, 2]


class TestScaling:
    def test_more_cores_never_slower(self):
        p = MatmulProblem(m=256, k=256, n=256)
        t1 = matmul_estimate(p, (1, 1)).time_s
        t4 = matmul_estimate(p, (2, 2)).time_s
        assert t4 < t1

    def test_bigger_problem_takes_longer(self):
        t_small = fft_estimate(FftProblem(n=64, batch=16), (1, 1)).time_s
        t_big = fft_estimate(FftProblem(n=256, batch=16), (1, 1)).time_s
        assert t_big > t_small

    def test_stencil_iters_scale_time(self):
        t1 = stencil9_estimate(Stencil9Problem(nx=64, ny=64, iters=1),
                               (1, 1)).time_s
        t4 = stencil9_estimate(Stencil9Problem(nx=64, ny=64, iters=4),
                               (1, 1)).time_s
        assert t4 > 2 * t1

    def test_power_grows_with_core_count(self):
        p = Stencil9Problem(nx=64, ny=64)
        assert stencil9_estimate(p, (2, 2)).power_w > \
            stencil9_estimate(p, (1, 1)).power_w


class TestDispatch:
    def test_estimate_op_routes_by_name(self):
        p = FftProblem(n=32, batch=8)
        assert estimate_op("fft", p, (1, 1)) == fft_estimate(p, (1, 1))

    def test_estimate_op_unknown_raises(self):
        with pytest.raises(KeyError, match="no estimator"):
            estimate_op("conv2d", None, (1, 1))

    def test_op_service_time_is_the_estimate_time(self):
        p = MatmulProblem(m=64, k=64, n=64)
        assert op_service_time("matmul", p, (1, 1)) == \
            matmul_estimate(p, (1, 1), DEFAULT_COSTS).time_s


class TestModelTracksSimulator:
    """The estimate must stay within a loose factor of the DES —
    it drives serve admission, so a wildly wrong model would starve or
    overload the pool."""

    @pytest.mark.parametrize("op,problem", [
        ("matmul", MatmulProblem(m=64, k=64, n=64)),
        ("fft", FftProblem(n=32, batch=16)),
        ("stencil9", Stencil9Problem(nx=64, ny=64, iters=2)),
    ])
    def test_within_4x_of_des(self, op, problem):
        from repro.ops import get_op
        res = get_op(op).run(problem, cores=(1, 1))
        est = estimate_op(op, problem, (1, 1))
        ratio = res.kernel_time_s / est.time_s
        assert 0.25 < ratio < 4.0, (
            f"{op}: DES {res.kernel_time_s:.3g}s vs model "
            f"{est.time_s:.3g}s (ratio {ratio:.2f})")
