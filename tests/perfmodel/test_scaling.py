"""Tier-2 scaling model tests: Table VIII fidelity + DES cross-validation."""

import pytest

from repro.core.grid import LaplaceProblem
from repro.core.jacobi_optimized import OptimizedJacobiRunner
from repro.perfmodel.calibration import DEFAULT_COSTS
from repro.perfmodel.scaling import (
    JacobiScalingModel,
    chunk_widths,
    columns_used,
    optimized_kernel_phases,
)


class TestChunkWidths:
    def test_exact_multiple(self):
        assert chunk_widths(2048) == [1024, 1024]

    def test_ragged_tail(self):
        assert chunk_widths(1152) == [1024, 128]

    def test_narrow(self):
        assert chunk_widths(512) == [512]

    def test_invalid(self):
        with pytest.raises(ValueError):
            chunk_widths(0)


class TestColumnsUsed:
    def test_normal_placement_uses_cx(self):
        assert columns_used(8, 9, DEFAULT_COSTS) == 9
        assert columns_used(8, 4, DEFAULT_COSTS) == 4

    def test_swap_when_y_exceeds_height(self):
        # the paper's 12x9: Y=12 > 10-row grid, so Y lies along the width
        assert columns_used(12, 9, DEFAULT_COSTS) == 12

    def test_too_big_rejected(self):
        with pytest.raises(ValueError):
            columns_used(13, 13, DEFAULT_COSTS)


class TestPhases:
    def test_traffic_accounting(self):
        ph = optimized_kernel_phases(1024, 100)
        assert ph.points == 1024 * 100
        assert ph.read_bytes == (1024 + 2) * 2 * 102   # ny + 2 halo rows
        assert ph.write_bytes == 1024 * 2 * 100

    def test_ragged_chunk_costs_full_tile(self):
        """1152 wide costs two full FPU passes per row — the X-split
        penalty behind the 8x8 row of Table VIII."""
        full = optimized_kernel_phases(1024, 10)
        ragged = optimized_kernel_phases(1152, 10)
        assert ragged.compute == pytest.approx(2 * full.compute, rel=0.05)

    def test_solo_iteration_between_max_and_sum(self):
        ph = optimized_kernel_phases(1024, 100)
        t = ph.solo_iteration_time(DEFAULT_COSTS)
        assert max(ph.stages) <= t <= sum(ph.stages)


class TestTable8Fidelity:
    """Every e150 row of Table VIII within 1.5x of the paper."""

    PAPER = [
        (1, 1, 1, 1.06), (1, 2, 1, 2.48), (1, 4, 1, 2.92), (2, 4, 1, 7.99),
        (8, 4, 1, 9.20), (8, 8, 1, 12.96), (8, 9, 1, 17.26),
        (12, 9, 1, 22.06),
    ]

    @pytest.mark.parametrize("cy,cx,cards,paper_gpts", PAPER)
    def test_row_within_band(self, cy, cx, cards, paper_gpts):
        model = JacobiScalingModel()
        res = model.run(9216, 1024, 5000, cy, cx, n_cards=cards)
        ratio = res.gpts / paper_gpts
        assert 1 / 1.5 <= ratio <= 1.5, f"{cy}x{cx}: {res.gpts:.2f} GPt/s"

    def test_single_core_calibration_tight(self):
        res = JacobiScalingModel().run(9216, 1024, 5000, 1, 1)
        assert res.gpts == pytest.approx(1.06, rel=0.05)

    def test_full_card_calibration_tight(self):
        res = JacobiScalingModel().run(9216, 1024, 5000, 12, 9)
        assert res.gpts == pytest.approx(22.06, rel=0.10)

    def test_column_bound_appears_at_scale(self):
        model = JacobiScalingModel()
        assert not model.run(9216, 1024, 5000, 1, 1).column_bound
        assert model.run(9216, 1024, 5000, 12, 9).column_bound

    def test_multicard_near_linear(self):
        model = JacobiScalingModel()
        one = model.run(9216, 1024, 5000, 12, 9)
        two = model.run_cards(9216, 1024, 5000, 24, 9, 2)
        four = model.run_cards(9216, 1024, 5000, 48, 9, 4)
        assert two.gpts == pytest.approx(2 * one.gpts, rel=0.02)
        # slightly sublinear: shorter per-card domains pay the 2 halo rows
        # over fewer interior rows (the paper's 4-card row is also ~1.6%
        # below perfect linearity)
        assert four.gpts == pytest.approx(4 * one.gpts, rel=0.07)

    def test_energy_five_times_better_than_cpu(self):
        """The paper's headline energy claim."""
        from repro.perfmodel.cpumodel import XeonModel
        cpu = XeonModel().energy_j(9216 * 1024, 5000, 24)
        card = JacobiScalingModel().run(9216, 1024, 5000, 12, 9).energy_j
        assert cpu / card > 4.0

    def test_energy_drops_with_cores(self):
        """Constant card power => more cores = less energy."""
        model = JacobiScalingModel()
        energies = [model.run(9216, 1024, 5000, cy, cx).energy_j
                    for cy, cx in [(1, 1), (2, 4), (8, 9), (12, 9)]]
        assert energies == sorted(energies, reverse=True)

    def test_validation(self):
        model = JacobiScalingModel()
        with pytest.raises(ValueError):
            model.run(1024, 1024, 0, 1, 1)
        with pytest.raises(ValueError):
            model.run(1024, 1024, 10, 12, 12)
        with pytest.raises(ValueError):
            model.run_cards(1024, 1024, 10, 9, 9, 2)  # 9 % 2 != 0


class TestDesCrossValidation:
    """The Tier-2 model and the DES must agree where both can run."""

    def test_single_core_small_domain(self, device_factory):
        problem = LaplaceProblem(nx=1024, ny=64)
        des = OptimizedJacobiRunner(device_factory(), problem).run(
            20, sim_iterations=2, read_back=False)
        model = JacobiScalingModel().run(1024, 64, 20, 1, 1)
        ratio = des.kernel_time_s / model.solve_time_s
        assert 0.5 <= ratio <= 2.0, f"DES/model ratio {ratio:.2f}"

    def test_scaling_direction_agrees(self, device_factory):
        problem = LaplaceProblem(nx=64, ny=64)
        des1 = OptimizedJacobiRunner(device_factory(), problem,
                                     cores_y=1, cores_x=1).run(
            10, sim_iterations=2, read_back=False)
        des4 = OptimizedJacobiRunner(device_factory(), problem,
                                     cores_y=2, cores_x=2).run(
            10, sim_iterations=2, read_back=False)
        m1 = JacobiScalingModel().run(64, 64, 10, 1, 1)
        m4 = JacobiScalingModel().run(64, 64, 10, 2, 2)
        assert (des4.kernel_time_s < des1.kernel_time_s) == (
            m4.solve_time_s < m1.solve_time_s)
