"""Wormhole projection tests (the paper's next-card future work)."""

import pytest

from repro.perfmodel.scaling import JacobiScalingModel
from repro.perfmodel.wormhole import (
    FP32_TILE_ELEMS,
    WORMHOLE_COSTS,
    WormholeModel,
)


class TestAssumptions:
    def test_geometry(self):
        assert WORMHOLE_COSTS.n_worker_cores == 72
        assert WORMHOLE_COSTS.n_dram_banks == 6
        assert WORMHOLE_COSTS.clock_hz == 1.0e9

    def test_per_op_costs_scale_with_clock(self):
        from repro.perfmodel.calibration import DEFAULT_COSTS
        assert WORMHOLE_COSTS.fpu_op > DEFAULT_COSTS.fpu_op

    def test_fp32_tile_is_half_a_bf16_tile(self):
        assert FP32_TILE_ELEMS == 512  # 16384 bits / 32


class TestProjection:
    def test_fp32_half_of_bf16_compute(self):
        m = WormholeModel()
        bf16 = m.run(9216, 1024, 100, 1, 1, dtype="bf16")
        fp32 = m.run(9216, 1024, 100, 1, 1, dtype="fp32")
        assert fp32.gpts == pytest.approx(bf16.gpts / 2, rel=0.1)

    def test_full_card_competitive_with_grayskull(self):
        """A 72-core Wormhole in BF16 lands near the 108-core Grayskull
        (faster memory compensates fewer cores)."""
        wh = WormholeModel().run(9216, 1024, 5000, 8, 9, dtype="bf16")
        gs = JacobiScalingModel().run(9216, 1024, 5000, 12, 9)
        assert 0.6 < wh.gpts / gs.gpts < 2.0

    def test_multicard_with_halos_near_linear(self):
        """Ethernet halo exchange costs little: ≥3.5x on 4 cards."""
        m = WormholeModel()
        one = m.run(9216, 1024, 5000, 8, 9)
        four = m.run(9216, 1024, 5000, 8, 9, n_cards=4)
        assert four.gpts / one.gpts > 3.5

    def test_halo_exchange_charged(self):
        """Multi-card iterations are strictly slower per card-iteration."""
        m = WormholeModel()
        one = m.run(9216, 4096, 100, 8, 9, n_cards=1)
        two = m.run(9216, 4096, 100, 8, 9, n_cards=2)
        # two cards: half the rows per card, plus the exchange; the
        # iteration time must exceed exactly-half of one card's
        half = m.run(9216, 2048, 100, 8, 9, n_cards=1)
        assert two.iteration_time_s > half.iteration_time_s

    def test_energy_accounting(self):
        m = WormholeModel()
        res = m.run(9216, 1024, 5000, 8, 9)
        assert res.energy_j == pytest.approx(
            res.solve_time_s * res.power_w)
        assert 110 <= res.power_w <= 130

    def test_validation(self):
        m = WormholeModel()
        with pytest.raises(ValueError):
            m.run(1024, 1024, 10, 1, 1, dtype="fp64")
        with pytest.raises(ValueError):
            m.run(1024, 1024, 0, 1, 1)
        with pytest.raises(ValueError):
            m.run(1024, 1024, 10, 9, 9)  # 81 > 72 workers
