"""Thin wrapper: the seeded-RNG / wall-clock audit now lives in
:mod:`repro.lint.pysource` (exposed as ``repro lint --py``), which
sweeps all of ``src/repro`` recursively.  Older per-package tests
(``tests/serve/test_rng_audit.py``, ``tests/faults/test_rng_audit.py``)
import the helpers from here; keep re-exporting them.
"""

from repro.lint.pysource import (  # noqa: F401
    FORBIDDEN_IMPORTS,
    audit_source,
    package_sources,
    violations,
)
