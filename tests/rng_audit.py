"""Shared seeded-RNG / wall-clock AST audit.

The determinism contract (byte-identical reports and fault traces
across repeat runs, ``-j`` settings and replay) only holds if every
source of variation in simulated-time code is an explicit
``random.Random(seed)``.  :func:`violations` walks a module's AST and
reports:

* any import of ``time`` or ``datetime`` (wall-clock vocabulary);
* any call through the ``random`` *module* other than the seeded
  constructor ``random.Random(...)`` — so ``random.random()``,
  ``random.choice()`` etc. (which share mutable global state) are out;
* unseeded NumPy generators (``numpy.random.default_rng()`` with no
  argument, or legacy ``numpy.random.<dist>`` calls).

Per-package test modules (``tests/serve/test_rng_audit.py``,
``tests/faults/test_rng_audit.py``) parametrise over
:func:`package_sources` and assert the violation list is empty.
"""

import ast
from pathlib import Path
from typing import List

FORBIDDEN_IMPORTS = {"time", "datetime"}


def package_sources(package) -> List[Path]:
    """Every ``*.py`` directly inside an imported package."""
    return sorted(Path(package.__file__).parent.glob("*.py"))


def violations(tree: ast.AST, filename: str) -> List[str]:
    out = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in FORBIDDEN_IMPORTS:
                    out.append(f"{filename}:{node.lineno}: "
                               f"imports wall-clock module {alias.name!r}")
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".")[0]
            if root in FORBIDDEN_IMPORTS:
                out.append(f"{filename}:{node.lineno}: "
                           f"imports from wall-clock module {node.module!r}")
        elif isinstance(node, ast.Call):
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            target = func.value
            # random.<anything but the seeded constructor>(...)
            if isinstance(target, ast.Name) and target.id == "random" \
                    and func.attr != "Random":
                out.append(f"{filename}:{node.lineno}: "
                           f"global-state call random.{func.attr}()")
            # numpy.random.default_rng() unseeded / legacy np.random.*
            if isinstance(target, ast.Attribute) \
                    and target.attr == "random" \
                    and isinstance(target.value, ast.Name) \
                    and target.value.id in ("np", "numpy"):
                if func.attr != "default_rng" or not node.args:
                    out.append(f"{filename}:{node.lineno}: "
                               f"unseeded numpy.random.{func.attr}()")
    return out


def audit_source(path: Path) -> List[str]:
    """Parse one file and return its violation list."""
    tree = ast.parse(path.read_text(), filename=str(path))
    return violations(tree, path.name)
