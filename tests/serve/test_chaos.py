"""Chaos serving: seeded per-device fault plans, the zero-silent
invariants, the intensity campaign, and the service-level fault
scenarios (all-members-degraded storm, retry/deadline race)."""

import json

import pytest

from repro.serve.chaos import (CHAOS_SCHEMA, ChaosConfig, build_chaos,
                               render_chaos_campaign, run_chaos_campaign,
                               summarize_chaos_run, verify_chaos_report)
from repro.serve.health import HealthConfig
from repro.serve.loadgen import LoadGenConfig, run_loadgen
from repro.serve.pool import PoolConfig, ServeHang
from repro.serve.request import AdmissionError, SolveRequest
from repro.serve.scheduler import SchedulerConfig
from repro.serve.service import SolveService
from repro.sim import Simulator


def _chaos_report(seed=0, n=16, intensity=1.0):
    return run_loadgen(
        LoadGenConfig(mode="closed", seed=seed, n_requests=n),
        chaos=ChaosConfig(seed=seed, intensity=intensity),
        solve=False, jobs=1, cache=False)


class TestChaosConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="intensity"):
            ChaosConfig(intensity=-1.0)
        with pytest.raises(ValueError, match="horizon_s"):
            ChaosConfig(horizon_s=0.0)
        with pytest.raises(ValueError, match="launch_horizon"):
            ChaosConfig(launch_horizon=0)
        with pytest.raises(ValueError, match="sdc_per_device"):
            ChaosConfig(sdc_per_device=-1)

    def test_dict_round_trip(self):
        cfg = ChaosConfig(seed=7, intensity=1.5, hangs_per_device=2)
        assert ChaosConfig.from_dict(cfg.to_dict()) == cfg

    def test_scaled_counts(self):
        assert ChaosConfig(intensity=2.0).scaled(3) == 6
        assert ChaosConfig(intensity=0.0).scaled(3) == 0
        assert ChaosConfig(intensity=0.5).scaled(1) == 0   # rounds down


class TestBuildChaos:
    def test_pure_function_of_inputs(self):
        cfg = ChaosConfig(seed=3)
        assert build_chaos(cfg, 2).plans == build_chaos(cfg, 2).plans
        assert build_chaos(cfg, 2).plans \
            != build_chaos(ChaosConfig(seed=4), 2).plans

    def test_per_device_plans_differ(self):
        plan = build_chaos(ChaosConfig(seed=0), 2)
        assert len(plan.plans) == 2
        assert plan.plans[0] != plan.plans[1]

    def test_zero_intensity_is_fault_free(self):
        plan = build_chaos(ChaosConfig(seed=0, intensity=0.0), 2)
        assert plan.n_faults == 0

    def test_intensity_scales_fault_count(self):
        one = build_chaos(ChaosConfig(seed=0, intensity=1.0), 2)
        two = build_chaos(ChaosConfig(seed=0, intensity=2.0), 2)
        assert two.n_faults > one.n_faults
        assert "fault(s)" in two.describe()


class TestVerifyChaosReport:
    def test_clean_chaos_run_has_no_violations(self):
        report = _chaos_report()
        assert verify_chaos_report(report) == []
        # The run actually experienced faults — the check is not vacuous.
        assert report.metrics.counters.get("sdc.injected", 0) > 0

    def test_detects_silent_corruption(self):
        report = _chaos_report()
        report.metrics.counters["sdc.injected"] += 1
        (violation,) = [v for v in verify_chaos_report(report)
                        if "silent corruption" in v]
        assert "injected" in violation

    def test_detects_duplicate_outcomes(self):
        report = _chaos_report()
        report.outcomes.append(report.outcomes[0])
        assert any("duplicate" in v for v in verify_chaos_report(report))

    def test_detects_untyped_shed_counter_drift(self):
        report = _chaos_report()
        report.metrics.counters["shed"] = \
            report.metrics.counters.get("shed", 0) + 1
        assert any("shed counter" in v for v in verify_chaos_report(report))

    def test_summary_shape(self):
        report = _chaos_report()
        s = summarize_chaos_run(report, 1.0)
        assert s["intensity"] == 1.0
        assert len(s["report_sha"]) == 16
        assert s["violations"] == []
        assert s["submitted"] == len(report.outcomes)
        assert "mttr_mean_s" in s["resilience"]


class TestCampaign:
    @staticmethod
    def _doc():
        return run_chaos_campaign(
            LoadGenConfig(mode="closed", seed=0, n_requests=12),
            chaos=ChaosConfig(seed=0), intensities=(1.0,),
            jobs=1, cache=False)

    def test_document_shape_and_invariants(self):
        doc = self._doc()
        assert doc["schema"] == CHAOS_SCHEMA
        assert doc["violations_total"] == 0
        assert doc["baseline"]["intensity"] == 0.0
        assert [r["intensity"] for r in doc["runs"]] == [1.0]
        for run in [doc["baseline"], *doc["runs"]]:
            assert run["p99_inflation_ok"]

    def test_repeat_campaigns_byte_identical(self):
        a = json.dumps(self._doc(), sort_keys=True)
        b = json.dumps(self._doc(), sort_keys=True)
        assert a == b

    def test_p99_bound_enforced(self):
        doc = run_chaos_campaign(
            LoadGenConfig(mode="closed", seed=0, n_requests=12),
            chaos=ChaosConfig(seed=0), intensities=(1.0,),
            p99_inflation_limit=1.0, jobs=1, cache=False)
        assert doc["violations_total"] >= 1
        assert any("p99 inflation" in v
                   for r in doc["runs"] for v in r["violations"])

    def test_render_lists_every_level(self):
        text = render_chaos_campaign(self._doc())
        assert "intensity" in text and "invariants" in text
        assert "OK" in text


class TestAllMembersDegradedStorm:
    """S3: every device quarantined at once; queue_full sheds are loud;
    the pool recovers through canary reintegration and serves again."""

    N = 24
    GAP = 5e-4

    def _run(self):
        sim = Simulator()
        svc = SolveService(
            sim,
            scheduler=SchedulerConfig(queue_capacity=4),
            pool=PoolConfig(n_devices=2, n_cpu_workers=1, max_retries=0),
            hangs=(ServeHang(0, 0), ServeHang(1, 0)),
            health=HealthConfig(window_s=1.0, suspect_after=1,
                                quarantine_after=1, canary_passes=1,
                                reintegrate_successes=1,
                                probe_delay_s=5e-3))
        shed_rids = []

        def driver():
            for rid in range(self.N):
                try:
                    svc.submit(SolveRequest(rid=rid, nx=32, ny=32))
                except AdmissionError as exc:
                    assert exc.reason == "queue_full"
                    shed_rids.append(rid)
                yield sim.timeout(self.GAP)

        sim.process(driver(), name="storm.driver")
        sim.run()
        return svc, shed_rids

    def test_storm_and_recovery(self):
        svc, shed_rids = self._run()
        c = svc.metrics.counters
        # Both members' first launch wedged: the one-strike breaker
        # quarantines the whole device pool.
        assert c["hangs"] == 2
        assert c["health.healthy->quarantined"] == 2
        # With the devices out, the bounded queue overflows — and every
        # overflow is a reported, typed shed, not a silent drop.
        assert shed_rids
        assert c["shed.queue_full"] == len(shed_rids)
        assert len(svc.outcomes) == self.N
        # Canary probes reintegrate both members...
        assert c["health.quarantined->reintegrating"] == 2
        assert c["health.reintegrating->healthy"] >= 1
        for dev in svc.pool.devices:
            assert dev.health.state in ("healthy", "reintegrating")
        # ...and they serve tenant work again afterwards (their launch 0
        # hung, so any device completion proves post-recovery service).
        device_completions = [
            o for o in svc.outcomes if o.status == "completed"
            and o.worker and o.worker.startswith("e150")]
        assert device_completions
        # Full accounting: completed + degraded + shed == submitted.
        statuses = {"completed": 0, "degraded": 0, "shed": 0}
        for o in svc.outcomes:
            statuses[o.status] += 1
        assert sum(statuses.values()) == self.N
        assert statuses["degraded"] >= 1          # hang victims on the CPU


class TestRetryDeadlineRace:
    """S4: the deadline expires while the retry is in flight on the
    second member — exactly one terminal outcome, the launch abandoned
    loudly."""

    def _run(self):
        sim = Simulator()
        pool = PoolConfig(n_devices=2, n_cpu_workers=0, max_retries=1)
        svc = SolveService(sim, pool=pool, hangs=(ServeHang(0, 0),))
        req = SolveRequest(rid=0, nx=64, ny=64)
        exp = svc.best_case_service_s(req)
        # Attempt 1 on e150-0 wedges: watchdog fires at factor*exp, the
        # retry backs off, then runs on e150-1 for another exp.  Put the
        # deadline halfway through that retry flight.
        deadline = (pool.watchdog_factor * exp + pool.retry_backoff_s
                    + 0.5 * exp)
        done = svc.submit(SolveRequest(rid=0, nx=64, ny=64,
                                       deadline_s=deadline))
        sim.run()
        return svc, done

    def test_exactly_one_terminal_outcome(self):
        svc, done = self._run()
        assert not done.ok
        assert done.value.reason == "deadline_expired"
        (out,) = svc.outcomes
        assert out.status == "shed"
        assert out.shed_reason == "deadline_expired"
        assert out.retries == 1
        assert svc.metrics.counters["shed.deadline_expired"] == 1

    def test_abandoned_launch_is_accounted(self):
        svc, _done = self._run()
        assert svc.metrics.counters["abandoned_launches"] == 1
        text = svc.metrics.trace.to_text()
        assert "retry-finished-after-deadline" in text
        assert "expired-mid-retry" in text
        # The wasted retry really ran on the second member.
        assert svc.pool.devices[1].launches == 1
