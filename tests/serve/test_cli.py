"""`repro serve` CLI: loadgen and replay driven through main()."""

from repro.cli import main


def _loadgen(out, extra=()):
    return main(["serve", "loadgen", "--seed", "0", "--requests", "12",
                 "--no-solve", "--out", str(out), *extra])


class TestServeLoadgen:
    def test_runs_and_writes_report(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        assert _loadgen(out) == 0
        captured = capsys.readouterr()
        assert "serve load test" in captured.out
        assert "pool utilization" in captured.out
        assert "report written" in captured.err
        assert out.read_text().startswith('{\n')

    def test_repeat_runs_byte_identical(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert _loadgen(a) == 0
        assert _loadgen(b) == 0
        assert a.read_bytes() == b.read_bytes()

    def test_jobs_flag_byte_identical(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["serve", "loadgen", "--seed", "0", "--requests", "8",
                     "--no-cache", "--out", str(a)]) == 0
        assert main(["serve", "loadgen", "--seed", "0", "--requests", "8",
                     "--no-cache", "-j", "2", "--out", str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()

    def test_hangs_surface_in_report(self, tmp_path, capsys):
        out = tmp_path / "r.json"
        # Enough load that the armed hang plan actually fires (the plan
        # targets per-device launch indices up to 16).
        assert main(["serve", "loadgen", "--seed", "0", "--requests",
                     "48", "--hangs", "2", "--no-solve",
                     "--out", str(out)]) == 0
        captured = capsys.readouterr()
        assert "resilience events:" in captured.out
        assert '"hangs": ' in out.read_text()

    def test_closed_mode(self, tmp_path):
        out = tmp_path / "closed.json"
        assert _loadgen(out, extra=["--mode", "closed"]) == 0
        assert '"mode": "closed"' in out.read_text()


class TestServeReplay:
    def test_record_then_replay_byte_identical(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert _loadgen(a, extra=["--hangs", "1",
                                  "--record", str(trace)]) == 0
        assert "trace written" in capsys.readouterr().err
        assert main(["serve", "replay", str(trace), "--no-solve",
                     "--out", str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()

    def test_replay_missing_trace_fails_cleanly(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        assert main(["serve", "replay", str(missing)]) != 0
