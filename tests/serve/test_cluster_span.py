"""Cluster-span serving: oversized grids span cards, small ones pack.

With ``PoolConfig.card_point_capacity`` set, a grid bigger than one
card reserves pool members as they free and launches once as a single
cluster span (charged the :mod:`repro.cluster` halo-exchange timeline);
grids needing more cards than the pool owns shed ``too_large`` at
admission; with the capacity unset everything behaves exactly as
before.
"""

import pytest

from repro.serve.pool import (
    PoolConfig,
    cluster_cards_needed,
    cluster_service_time,
)
from repro.serve.request import AdmissionError, SolveRequest
from repro.serve.service import SolveService
from repro.sim import Simulator


def make_service(n_devices=3, capacity=4096, **kw):
    sim = Simulator()
    svc = SolveService(sim, pool=PoolConfig(
        n_devices=n_devices, n_cpu_workers=0,
        card_point_capacity=capacity), **kw)
    return sim, svc


BIG = dict(nx=96, ny=96, iterations=8)       # 9216 points -> 3 cards @4096
SMALL = dict(nx=32, ny=32, iterations=4)     # 1024 points -> 1 card


class TestCardsNeeded:
    def test_disabled_capacity_never_spans(self):
        req = SolveRequest(rid=1, nx=512, ny=512)
        assert cluster_cards_needed(req, None) == 1

    def test_cpu_requests_never_span(self):
        req = SolveRequest(rid=1, nx=512, ny=512, backend="cpu")
        assert cluster_cards_needed(req, 1024) == 1

    def test_ceil_division(self):
        req = SolveRequest(rid=1, **BIG)
        assert cluster_cards_needed(req, 4096) == 3
        assert cluster_cards_needed(req, 9216) == 1
        assert cluster_cards_needed(req, 9215) == 2

    def test_service_time_includes_halo_rounds(self):
        req = SolveRequest(rid=1, **BIG)
        one = cluster_service_time(req, 1, PoolConfig(n_devices=4))
        four = cluster_service_time(req, 4, PoolConfig(n_devices=4))
        assert one > 0 and four > 0
        with pytest.raises(ValueError):
            cluster_service_time(req, 0, PoolConfig(n_devices=4))


class TestAdmission:
    def test_too_large_is_typed_and_recorded(self):
        _sim, svc = make_service(n_devices=2, capacity=1024)
        with pytest.raises(AdmissionError) as err:
            svc.submit(SolveRequest(rid=1, nx=64, ny=64))  # 4 cards > 2
        assert err.value.reason == "too_large"
        assert svc.outcomes[0].status == "shed"
        assert svc.outcomes[0].shed_reason == "too_large"
        assert svc.metrics.counters["shed.too_large"] == 1

    def test_fitting_request_admitted(self):
        sim, svc = make_service()
        svc.submit(SolveRequest(rid=1, **BIG))
        sim.run()
        assert svc.outcomes[0].status == "completed"

    def test_capacity_none_preserves_old_behaviour(self):
        sim, svc = make_service(capacity=None)
        svc.submit(SolveRequest(rid=1, nx=512, ny=512, iterations=2))
        sim.run()
        out = svc.outcomes[0]
        assert out.status == "completed"
        assert out.worker == "e150-0"              # single member
        assert "launches.cluster" not in svc.metrics.counters

    def test_deadline_checked_against_cluster_time(self):
        _sim, svc = make_service()
        need = cluster_cards_needed(SolveRequest(rid=9, **BIG), 4096)
        best = cluster_service_time(SolveRequest(rid=9, **BIG), need,
                                    svc.pool_cfg, svc.costs)
        with pytest.raises(AdmissionError) as err:
            svc.submit(SolveRequest(rid=1, deadline_s=best / 2, **BIG))
        assert err.value.reason == "deadline_unmeetable"


class TestSpanDispatch:
    def test_span_occupies_all_members(self):
        sim, svc = make_service()
        svc.submit(SolveRequest(rid=1, **BIG))
        sim.run()
        out = svc.outcomes[0]
        assert out.status == "completed"
        assert out.worker == "e150-0+e150-1+e150-2"
        assert out.cores == (3, 1)                 # the card split
        assert svc.metrics.counters["launches.cluster"] == 1
        for dev in svc.pool.devices:
            assert dev.launches == 1
            assert dev.busy_s > 0
            assert not dev.busy and not dev.reserved

    def test_small_tenants_pack_onto_spares(self):
        """A span needing 2 of 3 members leaves the third for small
        work: the small requests must not wait behind the cluster."""
        sim, svc = make_service()
        svc.submit(SolveRequest(rid=1, nx=96, ny=64, iterations=64))
        # 6144 points -> 2 cards; rid 2-4 fit one card each
        for i in range(3):
            svc.submit(SolveRequest(rid=2 + i, **SMALL))
        sim.run()
        by_rid = {o.request.rid: o for o in svc.outcomes}
        assert by_rid[1].worker == "e150-0+e150-1"
        assert all(by_rid[r].status == "completed" for r in (1, 2, 3, 4))
        # small tenants ran on the spare while the span was in flight
        assert by_rid[2].worker == "e150-2"
        assert by_rid[2].start_s < by_rid[1].finish_s

    def test_span_waits_for_members_to_free(self):
        """With every member busy, the span reserves each as it frees
        and launches only when it holds enough."""
        sim, svc = make_service()
        smalls = [SolveRequest(rid=i, **SMALL) for i in range(1, 4)]
        for req in smalls:                       # occupy all 3 members
            svc.submit(req)
        svc.submit(SolveRequest(rid=9, **BIG))   # needs all 3
        sim.run()
        by_rid = {o.request.rid: o for o in svc.outcomes}
        assert by_rid[9].status == "completed"
        small_finish = max(by_rid[r].finish_s for r in (1, 2, 3))
        assert by_rid[9].start_s >= small_finish

    def test_span_hang_retries_on_watchdog(self):
        from repro.serve.pool import ServeHang

        sim, svc = make_service(hangs=(ServeHang(device_id=0,
                                                 launch_index=0),))
        svc.submit(SolveRequest(rid=1, **BIG))
        sim.run()
        out = svc.outcomes[0]
        assert out.status == "completed"         # retried after watchdog
        assert out.retries == 1
        assert svc.metrics.counters["hangs"] == 1
        assert svc.metrics.counters["launches.cluster"] == 2

    def test_span_determinism(self):
        def run_once():
            sim, svc = make_service()
            svc.submit(SolveRequest(rid=1, **BIG))
            for i in range(2):
                svc.submit(SolveRequest(rid=2 + i, **SMALL))
            sim.run()
            return [(o.request.rid, o.status, o.worker, o.finish_s)
                    for o in svc.outcomes]

        assert run_once() == run_once()
