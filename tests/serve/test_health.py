"""The member-health circuit breaker: a pure state machine over
simulated fault times (healthy → suspect → quarantined →
reintegrating)."""

import pytest

from repro.serve.health import HEALTH_STATES, HealthConfig, MemberHealth


def _cfg(**kw):
    kw.setdefault("window_s", 2e-2)
    kw.setdefault("suspect_after", 1)
    kw.setdefault("quarantine_after", 3)
    return HealthConfig(**kw)


class TestHealthConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="window_s"):
            HealthConfig(window_s=0.0)
        with pytest.raises(ValueError, match="suspect_after"):
            HealthConfig(suspect_after=0)
        with pytest.raises(ValueError, match="quarantine_after"):
            HealthConfig(suspect_after=3, quarantine_after=2)
        with pytest.raises(ValueError, match="non-negative"):
            HealthConfig(probe_delay_s=-1.0)
        with pytest.raises(ValueError, match="canary_passes"):
            HealthConfig(canary_passes=0)
        with pytest.raises(ValueError, match="canary solve"):
            HealthConfig(canary_nx=0)

    def test_dict_round_trip(self):
        cfg = _cfg(canary_passes=3, window_s=1e-1)
        assert HealthConfig.from_dict(cfg.to_dict()) == cfg


class TestBreaker:
    def test_initially_healthy_and_accepting(self):
        h = MemberHealth(_cfg())
        assert h.state == "healthy" == HEALTH_STATES[0]
        assert h.accepts(0.0)
        assert h.rank() == 0

    def test_fault_makes_suspect_with_holdoff(self):
        h = MemberHealth(_cfg())
        assert h.note_fault(1.0, "hang") == ("healthy", "suspect")
        hold = h.cfg.suspect_holdoff_s
        assert not h.accepts(1.0 + hold / 2)
        assert h.accepts(1.0 + hold)

    def test_breaker_trips_at_quarantine_threshold(self):
        h = MemberHealth(_cfg(quarantine_after=3))
        assert h.note_fault(0.0, "sdc") == ("healthy", "suspect")
        assert h.note_fault(1e-3, "sdc") is None          # still suspect
        assert h.note_fault(2e-3, "sdc") == ("suspect", "quarantined")
        assert not h.accepts(100.0)                       # never, until probed
        assert h.epoch == 1

    def test_window_prunes_old_faults(self):
        h = MemberHealth(_cfg(window_s=1e-3, quarantine_after=2))
        h.note_fault(0.0, "hang")
        # Far outside the window: the old fault no longer counts, so
        # this is one-in-window again — no quarantine.
        assert h.note_fault(1.0, "hang") is None
        assert h.state == "suspect"
        assert h.window_count(1.0) == 1

    def test_suspect_recovers_when_window_drains(self):
        h = MemberHealth(_cfg(window_s=1e-3))
        h.note_fault(0.0, "hang")
        assert h.note_success(1e-4) is None               # window not drained
        assert h.note_success(1.0) == ("suspect", "healthy")
        assert h.accepts(1.0)


class TestQuarantineLifecycle:
    def _quarantined(self, t=0.0):
        h = MemberHealth(_cfg(suspect_after=1, quarantine_after=1,
                              reintegrate_successes=2))
        assert h.note_fault(t, "hang") == ("healthy", "quarantined")
        return h

    def test_reintegration_path(self):
        h = self._quarantined(t=1.0)
        assert h.to_reintegrating(2.0) == ("quarantined", "reintegrating")
        assert h.rank() == 1 and h.accepts(2.0)
        assert h.note_success(2.5) is None                # streak 1 of 2
        assert h.note_success(3.0) == ("reintegrating", "healthy")
        # MTTR: left healthy at t=1.0, returned at t=3.0.
        assert h.mttr_samples == [2.0]

    def test_zero_tolerance_while_reintegrating(self):
        h = self._quarantined()
        h.to_reintegrating(1.0)
        assert h.note_fault(1.5, "sdc") == ("reintegrating", "quarantined")
        assert h.epoch == 2                               # new probe epoch

    def test_canary_failure_keeps_quarantined(self):
        h = self._quarantined()
        assert h.note_fault(1.0, "canary.hang") is None
        assert h.state == "quarantined"
        assert h.epoch == 1                               # no re-entry

    def test_to_reintegrating_only_from_quarantine(self):
        h = MemberHealth(_cfg())
        assert h.to_reintegrating(0.0) is None
        assert h.state == "healthy"

    def test_transition_counters_and_doc(self):
        h = self._quarantined(t=1.0)
        h.to_reintegrating(2.0)
        h.note_success(2.5)
        h.note_success(3.0)
        doc = h.to_doc()
        assert doc["state"] == "healthy"
        assert doc["faults"] == 1
        assert doc["transitions"] == {
            "healthy->quarantined": 1,
            "quarantined->reintegrating": 1,
            "reintegrating->healthy": 1,
        }
        assert doc["mttr_s"] == [2.0]


class TestRank:
    def test_selection_order(self):
        ranks = {}
        h = MemberHealth(_cfg(suspect_after=1, quarantine_after=2))
        ranks["healthy"] = h.rank()
        h.note_fault(0.0, "hang")
        ranks["suspect"] = h.rank()
        h.note_fault(1e-3, "hang")
        ranks["quarantined"] = h.rank()
        h.to_reintegrating(1.0)
        ranks["reintegrating"] = h.rank()
        assert ranks["healthy"] < ranks["reintegrating"] \
            < ranks["suspect"] < ranks["quarantined"]
