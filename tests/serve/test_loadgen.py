"""Load generation and trace replay: the determinism contract."""

import pytest

from repro.serve.loadgen import (LoadGenConfig, load_trace, replay_trace,
                                 run_loadgen, synthesize_requests,
                                 write_trace)
from repro.serve.pool import PoolConfig


def _cfg(**kw):
    kw.setdefault("seed", 0)
    kw.setdefault("n_requests", 16)
    return LoadGenConfig(**kw)


class TestLoadGenConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="mode"):
            LoadGenConfig(mode="bursty")
        with pytest.raises(ValueError):
            LoadGenConfig(n_requests=0)
        with pytest.raises(ValueError):
            LoadGenConfig(arrival_rate_rps=0)
        with pytest.raises(ValueError):
            LoadGenConfig(sizes=())
        with pytest.raises(ValueError):
            LoadGenConfig(cpu_fraction=1.5)
        with pytest.raises(ValueError, match="slack"):
            LoadGenConfig(deadline_slack=1.0)

    def test_dict_round_trip(self):
        cfg = _cfg(mode="closed", sizes=(32, 64))
        assert LoadGenConfig.from_dict(cfg.to_dict()) == cfg


class TestSynthesize:
    def test_deterministic_per_seed(self):
        pool = PoolConfig()
        a = synthesize_requests(_cfg(), pool)
        b = synthesize_requests(_cfg(), pool)
        assert a == b
        assert a != synthesize_requests(_cfg(seed=1), pool)

    def test_population_shape(self):
        reqs = synthesize_requests(_cfg(n_requests=64), PoolConfig())
        assert [r.rid for r in reqs] == list(range(64))
        assert {r.backend for r in reqs} <= {"device", "cpu"}
        assert all(r.nx in (32, 48, 64, 96, 128) for r in reqs)
        assert any(r.deadline_s is not None for r in reqs)

    def test_fraction_extremes(self):
        all_cpu = synthesize_requests(_cfg(cpu_fraction=1.0), PoolConfig())
        assert all(r.backend == "cpu" for r in all_cpu)
        none = synthesize_requests(
            _cfg(deadline_fraction=0.0), PoolConfig())
        assert all(r.deadline_s is None for r in none)


class TestByteIdentity:
    def test_open_loop_repeat_runs(self):
        a = run_loadgen(_cfg(), solve=False)
        b = run_loadgen(_cfg(), solve=False)
        assert a.to_json_text() == b.to_json_text()

    def test_closed_loop_repeat_runs(self):
        cfg = _cfg(mode="closed")
        a = run_loadgen(cfg, solve=False)
        b = run_loadgen(cfg, solve=False)
        assert a.to_json_text() == b.to_json_text()

    def test_hang_plan_repeat_runs(self):
        a = run_loadgen(_cfg(), n_hangs=2, solve=False)
        b = run_loadgen(_cfg(), n_hangs=2, solve=False)
        assert a.to_json_text() == b.to_json_text()

    def test_worker_count_does_not_change_bytes(self):
        cfg = _cfg(n_requests=8)
        serial = run_loadgen(cfg, jobs=1, cache=False)
        fanned = run_loadgen(cfg, jobs=2, cache=False)
        assert serial.to_json_text() == fanned.to_json_text()


class TestSolvePostPass:
    def test_outcomes_annotated_and_solved(self):
        report = run_loadgen(_cfg(n_requests=8), jobs=1, cache=False)
        assert report.solves
        for o in report.outcomes:
            if o.status == "shed":
                assert o.solve_key is None
            else:
                assert o.solve_key in report.solves
                assert "grid_sha" in report.solves[o.solve_key]

    def test_solve_off_leaves_report_lean(self):
        report = run_loadgen(_cfg(n_requests=8), solve=False)
        assert report.solves == {}
        assert all(o.solve_key is None for o in report.outcomes)


class TestRecordReplay:
    def test_open_loop_replay_byte_identical(self, tmp_path):
        trace = tmp_path / "open.jsonl"
        original = run_loadgen(_cfg(), n_hangs=1, solve=False)
        write_trace(original, str(trace))
        replayed = replay_trace(str(trace), solve=False)
        assert replayed.to_json_text() == original.to_json_text()

    def test_closed_loop_replay_byte_identical(self, tmp_path):
        trace = tmp_path / "closed.jsonl"
        original = run_loadgen(_cfg(mode="closed"), solve=False)
        write_trace(original, str(trace))
        replayed = replay_trace(str(trace), solve=False)
        assert replayed.to_json_text() == original.to_json_text()

    def test_trace_covers_shed_requests(self, tmp_path):
        report = run_loadgen(_cfg(), n_hangs=1, solve=False)
        trace = tmp_path / "t.jsonl"
        write_trace(report, str(trace))
        _config, arrivals = load_trace(str(trace))
        assert len(arrivals) == len(report.outcomes)
        times = [t for t, _r in arrivals]
        assert times == sorted(times)

    def test_bad_traces_rejected(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_trace(str(empty))
        wrong = tmp_path / "wrong.jsonl"
        wrong.write_text('{"schema": "other/1", "config": {}}\n')
        with pytest.raises(ValueError, match="schema"):
            load_trace(str(wrong))


class TestServiceBehaviourUnderLoad:
    def test_hangs_recovered_never_lost(self):
        report = run_loadgen(_cfg(n_requests=24), n_hangs=2, solve=False)
        assert report.metrics.counters.get("hangs", 0) >= 1
        # Every submitted request is accounted for: completed, degraded
        # or shed — and hang victims were retried or degraded, not lost.
        assert len(report.outcomes) == 24
        assert any("serve.hang" in line
                   for line in report.metrics.trace.to_text().splitlines())

    def test_report_aggregates_consistent(self):
        report = run_loadgen(_cfg(), solve=False)
        doc = report.to_json()
        assert doc["schema"] == "repro-serve/2"
        assert doc["requests"]["submitted"] == len(report.outcomes)
        assert doc["requests"]["completed"] \
            + doc["requests"]["shed"] == doc["requests"]["submitted"]
        lat = doc["latency"]["total_s"]
        assert lat["n"] == doc["requests"]["completed"]
        assert set(doc["utilization"]) == {"e150-0", "e150-1", "cpu-0"}
