"""Mixed-workload serving: repro.ops request kinds through repro.serve.

The workload dimension must not disturb any existing contract: default
populations stay jacobi-only and bit-identical to the pre-mixing
generator, batches never mix kinds, per-kind latency telemetry is
additive on schema repro-serve/2, and mixed traces record/replay
byte-identically.
"""

import dataclasses

import pytest

from repro.serve import (SolveRequest, WORKLOADS, replay_trace,
                         run_loadgen, solve_key, synthesize_requests,
                         write_trace)
from repro.serve.loadgen import LoadGenConfig, _snap_size
from repro.serve.pool import (PoolConfig, cpu_service_time,
                              device_service_time, launch_overhead_s)


def _cfg(**kw):
    kw.setdefault("seed", 7)
    kw.setdefault("n_requests", 24)
    kw.setdefault("workloads", tuple(WORKLOADS))
    return LoadGenConfig(**kw)


class TestRequestWorkloadField:
    def test_default_is_jacobi(self):
        assert SolveRequest(rid=0, nx=32, ny=32).workload == "jacobi"

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="workload"):
            SolveRequest(rid=0, nx=32, ny=32, workload="conv2d")

    def test_fft_requires_power_of_two(self):
        with pytest.raises(ValueError, match="power-of-two"):
            SolveRequest(rid=0, nx=48, ny=8, workload="fft")
        SolveRequest(rid=0, nx=64, ny=8, workload="fft")

    def test_stencil9_requires_tile_multiple(self):
        with pytest.raises(ValueError, match="multiple of 32"):
            SolveRequest(rid=0, nx=40, ny=8, workload="stencil9")

    def test_tolerance_is_jacobi_only(self):
        with pytest.raises(ValueError, match="jacobi-only"):
            SolveRequest(rid=0, nx=64, ny=64, workload="matmul",
                         iterations=4, tolerance=1e-3)

    def test_dict_round_trip_keeps_workload(self):
        req = SolveRequest(rid=3, nx=64, ny=16, workload="fft")
        assert SolveRequest.from_dict(req.to_dict()) == req

    def test_old_trace_rows_without_workload_load_as_jacobi(self):
        row = SolveRequest(rid=1, nx=32, ny=32).to_dict()
        row.pop("workload", None)
        assert SolveRequest.from_dict(row).workload == "jacobi"


class TestSolveKey:
    def test_jacobi_keys_keep_historical_format(self):
        assert solve_key("device", 64, 32, 8) == "device:32x64:i8"

    def test_op_keys_are_prefixed(self):
        assert solve_key("device", 64, 32, 8, "fft") == \
            "fft:device:32x64:i8"


class TestServiceTimes:
    @pytest.mark.parametrize("workload,nx,ny", [
        ("matmul", 64, 64), ("fft", 64, 16), ("stencil9", 64, 64)])
    def test_op_service_times_positive(self, workload, nx, ny):
        req = SolveRequest(rid=0, nx=nx, ny=ny, iterations=4,
                           workload=workload)
        assert device_service_time(req, 2, 2) > 0
        assert cpu_service_time(req, 8) > 0
        assert launch_overhead_s([req]) > 0

    def test_repeats_scale_device_time(self):
        one = SolveRequest(rid=0, nx=64, ny=16, iterations=1,
                           workload="fft")
        four = SolveRequest(rid=0, nx=64, ny=16, iterations=4,
                            workload="fft")
        t1 = device_service_time(one, 1, 1)
        assert device_service_time(four, 1, 1) == pytest.approx(4 * t1)


class TestSnapSize:
    def test_fft_snaps_down_to_power_of_two(self):
        assert _snap_size("fft", 48) == 32
        assert _snap_size("fft", 64) == 64
        assert _snap_size("fft", 5) == 4    # floor of the snap is 4

    def test_stencil9_snaps_up_to_tile_multiple(self):
        assert _snap_size("stencil9", 48) == 64
        assert _snap_size("stencil9", 32) == 32

    def test_jacobi_and_matmul_unchanged(self):
        assert _snap_size("jacobi", 48) == 48
        assert _snap_size("matmul", 48) == 48


class TestPopulation:
    def test_default_population_is_jacobi_only(self):
        reqs = synthesize_requests(LoadGenConfig(seed=0, n_requests=32),
                                   PoolConfig())
        assert all(r.workload == "jacobi" for r in reqs)

    def test_default_population_unchanged_by_the_mixing_machinery(self):
        # single-kind configs must not consume the workload RNG stream,
        # so pre-mixing traces stay bit-identical
        base = synthesize_requests(LoadGenConfig(seed=0, n_requests=32),
                                   PoolConfig())
        jac = synthesize_requests(
            LoadGenConfig(seed=0, n_requests=32, workloads=("jacobi",)),
            PoolConfig())
        assert base == jac

    def test_mixed_population_draws_every_kind(self):
        reqs = synthesize_requests(_cfg(n_requests=64), PoolConfig())
        kinds = {r.workload for r in reqs}
        assert kinds == set(WORKLOADS)
        # every synthesized request satisfies its kind's constraint
        for r in reqs:
            dataclasses.replace(r)   # __post_init__ re-validates

    def test_workloads_validated(self):
        with pytest.raises(ValueError, match="workload"):
            LoadGenConfig(workloads=("jacobi", "conv2d"))
        with pytest.raises(ValueError):
            LoadGenConfig(workloads=())

    def test_config_round_trip_keeps_workloads(self):
        cfg = _cfg(workloads=("fft", "matmul"))
        assert LoadGenConfig.from_dict(cfg.to_dict()) == cfg


class TestMixedServing:
    def test_batches_never_mix_kinds(self):
        report = run_loadgen(_cfg(n_requests=48), solve=False)
        by_batch = {}
        for o in report.outcomes:
            if o.status != "shed" and o.batch_id is not None:
                by_batch.setdefault(o.batch_id, set()).add(
                    o.request.workload)
        assert by_batch, "expected at least one batched launch"
        for batch_id, kinds in by_batch.items():
            assert len(kinds) == 1, (
                f"batch {batch_id} mixed workload kinds {sorted(kinds)}")

    def test_per_kind_latency_telemetry(self):
        report = run_loadgen(_cfg(n_requests=48), solve=False)
        doc = report.to_json()
        assert doc["schema"] == "repro-serve/2"
        by_kind = doc["latency_by_workload"]
        assert set(by_kind) == {o.request.workload
                                for o in report.completed()}
        for kind, summaries in by_kind.items():
            for metric in ("wait_s", "service_s", "total_s"):
                assert summaries[metric]["n"] > 0
                assert summaries[metric]["p50"] <= \
                    summaries[metric]["p99"]
        total = sum(s["total_s"]["n"] for s in by_kind.values())
        assert total == doc["requests"]["completed"]

    def test_outcome_rows_carry_workload(self):
        report = run_loadgen(_cfg(), solve=False)
        doc = report.to_json()
        for row in doc["outcomes"]:
            assert row["workload"] in WORKLOADS

    def test_solve_postpass_fingerprints_op_kinds(self):
        report = run_loadgen(_cfg(), solve=True, jobs=1, cache=False)
        op_keys = [k for k in report.solves
                   if k.split(":")[0] in ("matmul", "fft", "stencil9")]
        assert op_keys, "expected op-workload solve keys in the report"
        for key in op_keys:
            payload = report.solves[key]
            assert payload["workload"] == key.split(":")[0]
            assert len(payload["grid_sha"]) == 64

    def test_mixed_report_render_mentions_kinds(self):
        from repro.serve import render_serve_report
        text = render_serve_report(run_loadgen(_cfg(), solve=False))
        assert "latency by workload" in text

    def test_mixed_record_replay_byte_identical(self, tmp_path):
        trace = str(tmp_path / "mixed.jsonl")
        report = run_loadgen(_cfg(), solve=True, jobs=1, cache=False)
        write_trace(report, trace)
        replayed = replay_trace(trace, solve=True, jobs=1, cache=False)
        assert replayed.to_json_text() == report.to_json_text()

    def test_repeat_mixed_runs_byte_identical(self):
        a = run_loadgen(_cfg(), solve=False)
        b = run_loadgen(_cfg(), solve=False)
        assert a.to_json_text() == b.to_json_text()
