"""Pool members, service-time models and deterministic hang plans."""

import pytest

from repro.serve.pool import (DeviceMember, PoolConfig, ServeHang,
                              WorkerPool, best_case_service_s,
                              cpu_service_time, device_service_time,
                              generate_hangs, launch_overhead_s)
from repro.serve.request import SolveRequest


class TestPoolConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            PoolConfig(n_devices=-1)
        with pytest.raises(ValueError, match="at least one member"):
            PoolConfig(n_devices=0, n_cpu_workers=0)
        with pytest.raises(ValueError, match="watchdog"):
            PoolConfig(watchdog_factor=1.0)
        with pytest.raises(ValueError):
            PoolConfig(max_retries=-1)

    def test_cpu_only_pool_allowed(self):
        cfg = PoolConfig(n_devices=0, n_cpu_workers=2)
        pool = WorkerPool(cfg)
        assert not pool.devices and len(pool.cpus) == 2


class TestGenerateHangs:
    def test_deterministic_for_seed(self):
        assert generate_hangs(7, 3, 2) == generate_hangs(7, 3, 2)
        assert generate_hangs(7, 3, 2) != generate_hangs(8, 3, 2)

    def test_unique_and_sorted(self):
        hangs = generate_hangs(0, 8, 2)
        keys = [(h.device_id, h.launch_index) for h in hangs]
        assert len(set(keys)) == len(keys) == 8
        assert keys == sorted(keys)

    def test_zero_hangs(self):
        assert generate_hangs(0, 0, 2) == ()

    def test_needs_a_device(self):
        with pytest.raises(ValueError):
            generate_hangs(0, 1, 0)


class TestServiceTimes:
    def test_more_cores_is_faster(self):
        req = SolveRequest(rid=0, nx=128, ny=128)
        full = device_service_time(req, 12, 9)
        band = device_service_time(req, 4, 9)
        assert 0 < full < band

    def test_cpu_scales_with_points(self):
        small = cpu_service_time(SolveRequest(rid=0, nx=32, ny=32), 24)
        big = cpu_service_time(SolveRequest(rid=1, nx=128, ny=128), 24)
        assert 0 < small < big

    def test_launch_overhead_sums_batch_bytes(self):
        one = launch_overhead_s([SolveRequest(rid=0, nx=32, ny=32)])
        two = launch_overhead_s([SolveRequest(rid=0, nx=32, ny=32),
                                 SolveRequest(rid=1, nx=32, ny=32)])
        assert two > one > 0

    def test_best_case_matches_backend(self):
        cfg = PoolConfig()
        dev_req = SolveRequest(rid=0, nx=64, ny=64)
        cpu_req = SolveRequest(rid=1, nx=64, ny=64, backend="cpu")
        dev = best_case_service_s(dev_req, cfg)
        assert dev == launch_overhead_s([dev_req]) \
            + device_service_time(dev_req, 12, 9)
        assert best_case_service_s(cpu_req, cfg) \
            == cpu_service_time(cpu_req, cfg.cpu_threads)

    def test_best_case_clamps_tiny_grids(self):
        cfg = PoolConfig()
        req = SolveRequest(rid=0, nx=4, ny=4)
        assert best_case_service_s(req, cfg) == launch_overhead_s([req]) \
            + device_service_time(req, 4, 4)


class TestMembers:
    def test_hang_plan_targets_one_launch(self):
        dev = DeviceMember(0, (12, 9), [ServeHang(0, 1), ServeHang(1, 0)])
        assert not dev.next_launch_hangs()       # launch 0 is clean
        dev.launches = 1
        assert dev.next_launch_hangs()           # launch 1 wedges
        other = DeviceMember(1, (12, 9), [ServeHang(0, 1)])
        other.launches = 1
        assert not other.next_launch_hangs()     # plan is per-device

    def test_hang_error_vocabulary(self):
        dev = DeviceMember(0, (12, 9))
        err = dev.hang_error(t=1.0, timeout_s=0.5)
        assert err.timeout_s == 0.5
        assert err.stalls and err.stalls[0].waiting_on == "cb.wait_front"

    def test_availability_tracks_health(self):
        dev = DeviceMember(0, (12, 9))
        assert dev.available(0.0)
        # A fault makes the member suspect: it rests out the holdoff.
        dev.health.note_fault(1.0, "hang")
        hold = dev.health.cfg.suspect_holdoff_s
        assert not dev.available(1.0 + hold / 2)
        assert dev.available(1.0 + hold)
        dev.busy = True
        assert not dev.available(5.0)
        dev.busy = False
        # Quarantined members never accept tenant work.
        while dev.health.state != "quarantined":
            dev.health.note_fault(1.0, "sdc")
        assert not dev.available(100.0)

    def test_free_member_is_lowest_id(self):
        pool = WorkerPool(PoolConfig(n_devices=3))
        assert pool.free_device(0.0).device_id == 0
        pool.devices[0].busy = True
        assert pool.free_device(0.0).device_id == 1

    def test_free_member_prefers_healthier_rank(self):
        pool = WorkerPool(PoolConfig(n_devices=2))
        # Device 0 suspect (past its holdoff), device 1 healthy: the
        # healthy one wins even though its id is higher.
        pool.devices[0].health.note_fault(0.0, "hang")
        later = pool.devices[0].health.held_until + 1.0
        assert pool.free_device(later).device_id == 1

    def test_utilization(self):
        pool = WorkerPool(PoolConfig(n_devices=1, n_cpu_workers=1))
        pool.devices[0].busy_s = 0.5
        util = pool.utilization(2.0)
        assert util == {"e150-0": 0.25, "cpu-0": 0.0}
        assert pool.devices[0].utilization(0.0) == 0.0
