"""Request vocabulary: validation, tolerance conversion, round-trips."""

import pytest

from repro.serve.request import (AdmissionError, SolveRequest,
                                 iterations_for_tolerance)


class TestSolveRequest:
    def test_defaults(self):
        req = SolveRequest(rid=0)
        assert req.nx == req.ny == 64
        assert req.backend == "device"
        assert req.points == 64 * 64
        assert req.effective_iterations == 32

    def test_validation(self):
        with pytest.raises(ValueError, match="too small"):
            SolveRequest(rid=0, nx=2)
        with pytest.raises(ValueError, match="iterations"):
            SolveRequest(rid=0, iterations=0)
        with pytest.raises(ValueError, match="backend"):
            SolveRequest(rid=0, backend="gpu")
        with pytest.raises(ValueError, match="priority"):
            SolveRequest(rid=0, priority=-1)
        with pytest.raises(ValueError, match="deadline"):
            SolveRequest(rid=0, deadline_s=0.0)

    def test_degraded_swaps_backend_only(self):
        req = SolveRequest(rid=7, nx=32, ny=48, priority=2)
        deg = req.degraded()
        assert deg.backend == "cpu"
        assert (deg.rid, deg.nx, deg.ny, deg.priority) == (7, 32, 48, 2)
        assert req.backend == "device"  # frozen original untouched

    def test_dict_round_trip(self):
        req = SolveRequest(rid=3, nx=48, ny=96, iterations=16,
                           backend="cpu", priority=0, deadline_s=0.5)
        assert SolveRequest.from_dict(req.to_dict()) == req

    def test_tolerance_caps_iterations(self):
        req = SolveRequest(rid=0, nx=32, ny=32, iterations=10,
                           tolerance=1e-12)
        assert req.effective_iterations == 10  # clamped by budget
        loose = SolveRequest(rid=1, nx=32, ny=32, iterations=10**6,
                             tolerance=0.5)
        assert 1 <= loose.effective_iterations < 10**6


class TestIterationsForTolerance:
    def test_monotone_in_tolerance(self):
        tight = iterations_for_tolerance(64, 64, 1e-6, 10**6)
        loose = iterations_for_tolerance(64, 64, 1e-2, 10**6)
        assert tight > loose >= 1

    def test_invalid_tolerance(self):
        with pytest.raises(ValueError):
            iterations_for_tolerance(64, 64, 0.0, 100)
        with pytest.raises(ValueError):
            iterations_for_tolerance(64, 64, 1.5, 100)


class TestAdmissionError:
    def test_carries_reason_and_detail(self):
        err = AdmissionError("queue_full", "class 0 holds 64/64")
        assert err.reason == "queue_full"
        assert "queue_full" in str(err) and "64/64" in str(err)
