"""Seeded-RNG audit: simulated-time serving code may never consult the
wall clock or the process-global random module.

The serve determinism contract (byte-identical reports across repeat
runs, ``-j`` settings and trace replay) only holds if every source of
variation is an explicit ``random.Random(seed)``.  This test walks the
AST of every module under ``src/repro/serve/`` and fails on:

* any import of ``time`` or ``datetime`` (wall-clock vocabulary);
* any call through the ``random`` *module* other than the seeded
  constructor ``random.Random(...)`` — so ``random.random()``,
  ``random.choice()`` etc. (which share mutable global state) are out;
* unseeded NumPy generators (``numpy.random.default_rng()`` with no
  argument, or legacy ``numpy.random.<dist>`` calls).
"""

import ast
from pathlib import Path

import pytest

import repro.serve

SERVE_DIR = Path(repro.serve.__file__).parent
SOURCES = sorted(SERVE_DIR.glob("*.py"))

FORBIDDEN_IMPORTS = {"time", "datetime"}


def _violations(tree: ast.AST, filename: str):
    out = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in FORBIDDEN_IMPORTS:
                    out.append(f"{filename}:{node.lineno}: "
                               f"imports wall-clock module {alias.name!r}")
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".")[0]
            if root in FORBIDDEN_IMPORTS:
                out.append(f"{filename}:{node.lineno}: "
                           f"imports from wall-clock module {node.module!r}")
        elif isinstance(node, ast.Call):
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            target = func.value
            # random.<anything but the seeded constructor>(...)
            if isinstance(target, ast.Name) and target.id == "random" \
                    and func.attr != "Random":
                out.append(f"{filename}:{node.lineno}: "
                           f"global-state call random.{func.attr}()")
            # numpy.random.default_rng() unseeded / legacy np.random.*
            if isinstance(target, ast.Attribute) \
                    and target.attr == "random" \
                    and isinstance(target.value, ast.Name) \
                    and target.value.id in ("np", "numpy"):
                if func.attr != "default_rng" or not node.args:
                    out.append(f"{filename}:{node.lineno}: "
                               f"unseeded numpy.random.{func.attr}()")
    return out


def test_serve_sources_found():
    names = {p.name for p in SOURCES}
    assert {"service.py", "loadgen.py", "pool.py"} <= names


@pytest.mark.parametrize("source", SOURCES, ids=lambda p: p.name)
def test_no_wall_clock_or_global_rng(source):
    tree = ast.parse(source.read_text(), filename=str(source))
    assert _violations(tree, source.name) == []


class TestAuditCatchesViolations:
    """The audit itself must actually detect the forbidden patterns."""

    def _check(self, code):
        return _violations(ast.parse(code), "<case>")

    def test_flags_time_import(self):
        assert self._check("import time\n")
        assert self._check("from time import perf_counter\n")
        assert self._check("from datetime import datetime\n")

    def test_flags_global_random_calls(self):
        assert self._check("import random\nx = random.random()\n")
        assert self._check("import random\nx = random.choice([1])\n")

    def test_flags_unseeded_numpy(self):
        assert self._check("import numpy as np\n"
                           "g = np.random.default_rng()\n")
        assert self._check("import numpy as np\nx = np.random.rand(3)\n")

    def test_allows_seeded_constructions(self):
        assert not self._check("import random\nr = random.Random(7)\n")
        assert not self._check("import numpy as np\n"
                               "g = np.random.default_rng(7)\n")
