"""Seeded-RNG audit: simulated-time serving code may never consult the
wall clock or the process-global random module.

The walker itself lives in ``tests/rng_audit.py`` (shared with the
``repro.faults`` audit); this module applies it to every source file
under ``src/repro/serve/`` and keeps the self-tests proving the audit
actually catches the forbidden patterns.
"""

import ast

import pytest

import repro.serve
from tests.rng_audit import audit_source, package_sources, violations

SOURCES = package_sources(repro.serve)


def test_serve_sources_found():
    names = {p.name for p in SOURCES}
    assert {"service.py", "loadgen.py", "pool.py",
            "health.py", "chaos.py"} <= names


@pytest.mark.parametrize("source", SOURCES, ids=lambda p: p.name)
def test_no_wall_clock_or_global_rng(source):
    assert audit_source(source) == []


class TestAuditCatchesViolations:
    """The audit itself must actually detect the forbidden patterns."""

    def _check(self, code):
        return violations(ast.parse(code), "<case>")

    def test_flags_time_import(self):
        assert self._check("import time\n")
        assert self._check("from time import perf_counter\n")
        assert self._check("from datetime import datetime\n")

    def test_flags_global_random_calls(self):
        assert self._check("import random\nx = random.random()\n")
        assert self._check("import random\nx = random.choice([1])\n")

    def test_flags_unseeded_numpy(self):
        assert self._check("import numpy as np\n"
                           "g = np.random.default_rng()\n")
        assert self._check("import numpy as np\nx = np.random.rand(3)\n")

    def test_allows_seeded_constructions(self):
        assert not self._check("import random\nr = random.Random(7)\n")
        assert not self._check("import numpy as np\n"
                               "g = np.random.default_rng(7)\n")
