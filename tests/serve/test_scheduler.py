"""Bounded priority queues and the batching policy."""

import pytest

from repro.serve.request import AdmissionError, SolveRequest
from repro.serve.scheduler import (BoundedPriorityQueue, SchedulerConfig,
                                   plan_batch)


def _req(rid, priority=1, backend="device", nx=32, ny=32, **kw):
    return SolveRequest(rid=rid, nx=nx, ny=ny, priority=priority,
                        backend=backend, **kw)


class TestSchedulerConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SchedulerConfig(n_priorities=0)
        with pytest.raises(ValueError):
            SchedulerConfig(queue_capacity=0)
        with pytest.raises(ValueError):
            SchedulerConfig(max_batch=0)


class TestBoundedPriorityQueue:
    def test_priority_order_fifo_within_class(self):
        q = BoundedPriorityQueue(SchedulerConfig())
        q.push(_req(0, priority=2))
        q.push(_req(1, priority=0))
        q.push(_req(2, priority=0))
        q.push(_req(3, priority=1))
        assert [q.pop().rid for _ in range(4)] == [1, 2, 3, 0]
        assert q.pop() is None

    def test_full_class_raises_queue_full(self):
        q = BoundedPriorityQueue(SchedulerConfig(queue_capacity=2))
        q.push(_req(0, priority=0))
        q.push(_req(1, priority=0))
        with pytest.raises(AdmissionError) as excinfo:
            q.push(_req(2, priority=0))
        assert excinfo.value.reason == "queue_full"
        # Other classes are unaffected by one full class.
        q.push(_req(3, priority=1))
        assert len(q) == 3

    def test_push_front_bypasses_capacity_and_leads(self):
        q = BoundedPriorityQueue(SchedulerConfig(queue_capacity=2))
        q.push(_req(0, priority=0))
        q.push(_req(1, priority=0))
        q.push_front(_req(9, priority=0))      # retry: never shed
        assert len(q) == 3
        assert q.peek().rid == 9

    def test_excess_priority_clamped_to_lowest_class(self):
        q = BoundedPriorityQueue(SchedulerConfig(n_priorities=2))
        q.push(_req(0, priority=99))
        q.push(_req(1, priority=0))
        assert q.pop().rid == 1
        assert q.pop().rid == 0

    def test_pop_where_preserves_non_matching_order(self):
        q = BoundedPriorityQueue(SchedulerConfig())
        q.push(_req(0, backend="cpu"))
        q.push(_req(1, backend="device"))
        q.push(_req(2, backend="cpu"))
        q.push(_req(3, backend="device"))
        got = q.pop_where(lambda r: r.backend == "device", limit=2)
        assert [r.rid for r in got] == [1, 3]
        assert [q.pop().rid for _ in range(2)] == [0, 2]

    def test_pop_where_respects_limit_and_priority(self):
        q = BoundedPriorityQueue(SchedulerConfig())
        q.push(_req(0, priority=1))
        q.push(_req(1, priority=0))
        got = q.pop_where(lambda r: True, limit=1)
        assert [r.rid for r in got] == [1]
        assert q.depth() == 1


class TestPlanBatch:
    def test_single_request_gets_whole_grid(self):
        plan = plan_batch([_req(0, nx=200, ny=200)], grid=(12, 9))
        assert plan.allocations == ((12, 9),)

    def test_batch_carves_row_bands(self):
        reqs = [_req(i, nx=200, ny=200) for i in range(3)]
        plan = plan_batch(reqs, grid=(12, 9))
        assert len(plan) == 3
        # split_domain(12 rows, 3 parts) -> 4-row bands spanning width 9.
        assert plan.allocations == ((4, 9), (4, 9), (4, 9))

    def test_allocation_clamped_to_tiny_interior(self):
        plan = plan_batch([_req(0, nx=3, ny=3)], grid=(12, 9))
        assert plan.allocations == ((3, 3),)

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            plan_batch([], grid=(12, 9))

    def test_oversized_batch_rejected(self):
        reqs = [_req(i) for i in range(13)]
        with pytest.raises(ValueError, match="exceeds"):
            plan_batch(reqs, grid=(12, 9))
