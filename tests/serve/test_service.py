"""SolveService end-to-end: admission, batching, hangs, degradation."""

import hashlib

import numpy as np
import pytest

from repro.core.grid import LaplaceProblem
from repro.cpu.jacobi import jacobi_solve_f32
from repro.serve.jobs import run_solve_postpass, solve_key
from repro.serve.pool import PoolConfig, ServeHang, best_case_service_s
from repro.serve.request import AdmissionError, SolveRequest
from repro.serve.scheduler import SchedulerConfig
from repro.serve.service import SolveService
from repro.sim import Simulator


def _service(scheduler=None, pool=None, hangs=()):
    sim = Simulator()
    svc = SolveService(sim, scheduler, pool, hangs)
    return sim, svc


class TestAdmission:
    def test_duplicate_rid_rejected(self):
        sim, svc = _service()
        svc.submit(SolveRequest(rid=0))
        with pytest.raises(AdmissionError) as excinfo:
            svc.submit(SolveRequest(rid=0))
        assert excinfo.value.reason == "invalid"

    def test_backend_without_members_rejected(self):
        sim, svc = _service(pool=PoolConfig(n_devices=0, n_cpu_workers=1))
        with pytest.raises(AdmissionError, match="no devices"):
            svc.submit(SolveRequest(rid=0, backend="device"))

    def test_unmeetable_deadline_shed_and_raised(self):
        sim, svc = _service()
        with pytest.raises(AdmissionError) as excinfo:
            svc.submit(SolveRequest(rid=0, deadline_s=1e-12))
        assert excinfo.value.reason == "deadline_unmeetable"
        # Shed requests are reported, never silently dropped.
        assert len(svc.outcomes) == 1
        out = svc.outcomes[0]
        assert out.status == "shed"
        assert out.shed_reason == "deadline_unmeetable"
        assert svc.metrics.counters["shed.deadline_unmeetable"] == 1

    def test_queue_full_shed_and_raised(self):
        sim, svc = _service(scheduler=SchedulerConfig(queue_capacity=1))
        svc.submit(SolveRequest(rid=0, priority=0))
        with pytest.raises(AdmissionError) as excinfo:
            svc.submit(SolveRequest(rid=1, priority=0))
        assert excinfo.value.reason == "queue_full"
        assert svc.outcomes[0].shed_reason == "queue_full"
        assert svc.metrics.counters["shed"] == 1

    def test_meetable_deadline_admitted_and_met(self):
        sim, svc = _service()
        req = SolveRequest(rid=0, nx=32, ny=32)
        slack = 8 * best_case_service_s(req, svc.pool_cfg)
        done = svc.submit(SolveRequest(rid=0, nx=32, ny=32,
                                       deadline_s=slack))
        sim.run()
        assert done.ok and done.value.deadline_met is True


class TestDeadlineExpiry:
    def test_queued_request_past_deadline_is_shed(self):
        pool = PoolConfig(n_devices=1, n_cpu_workers=0)
        sim, svc = _service(pool=pool)
        # A long-running head-of-line request...
        svc.submit(SolveRequest(rid=0, nx=256, ny=256, iterations=4000,
                                priority=0))
        # ...then one whose (meetable) deadline expires while it queues.
        req = SolveRequest(rid=1, nx=32, ny=32)
        deadline = 1.5 * best_case_service_s(req, pool)
        done = svc.submit(SolveRequest(rid=1, nx=32, ny=32,
                                       deadline_s=deadline, priority=0))
        sim.run()
        shed = [o for o in svc.outcomes if o.status == "shed"]
        assert [o.request.rid for o in shed] == [1]
        assert shed[0].shed_reason == "deadline_expired"
        assert not done.ok
        assert done.value.reason == "deadline_expired"


class TestBatching:
    @staticmethod
    def _run(max_batch, n=4, size=32):
        sim, svc = _service(
            scheduler=SchedulerConfig(max_batch=max_batch),
            pool=PoolConfig(n_devices=1, n_cpu_workers=0))
        for rid in range(n):
            svc.submit(SolveRequest(rid=rid, nx=size, ny=size,
                                    iterations=32))
        sim.run()
        return sim.now, svc

    def test_batched_beats_serial_simulated_time(self):
        """Packing compatible small grids onto one launch wins latency."""
        batched_t, batched = self._run(max_batch=4)
        serial_t, serial = self._run(max_batch=1)
        assert batched.metrics.counters["launches.device"] == 1
        assert batched.metrics.counters["batches.multi"] == 1
        assert serial.metrics.counters["launches.device"] == 4
        assert "batches.multi" not in serial.metrics.counters
        assert batched_t < serial_t
        # Everyone still completes, with per-request core slices.
        done = [o for o in batched.outcomes if o.status == "completed"]
        assert len(done) == 4
        assert all(o.batch_size == 4 and o.cores == (3, 9) for o in done)

    def test_large_request_never_batched(self):
        sim, svc = _service(
            scheduler=SchedulerConfig(max_batch=4,
                                      batch_point_limit=16384),
            pool=PoolConfig(n_devices=1, n_cpu_workers=0))
        svc.submit(SolveRequest(rid=0, nx=256, ny=256))   # over the limit
        svc.submit(SolveRequest(rid=1, nx=32, ny=32))
        sim.run()
        big = next(o for o in svc.outcomes if o.request.rid == 0)
        assert big.batch_size == 1 and big.cores == (12, 9)


class TestHangRecovery:
    def test_hang_retries_on_another_member(self):
        sim, svc = _service(pool=PoolConfig(n_devices=2, n_cpu_workers=0,
                                            max_retries=1),
                            hangs=(ServeHang(0, 0),))
        done = svc.submit(SolveRequest(rid=0, nx=32, ny=32))
        sim.run()
        out = done.value
        assert out.status == "completed"
        assert out.worker == "e150-1"            # not the wedged member
        assert out.retries == 1
        assert svc.metrics.counters["hangs"] == 1
        assert svc.metrics.counters["retries"] == 1
        text = svc.metrics.trace.to_text()
        assert "serve.hang" in text and "retried" in text
        assert "watchdog@" in text

    def test_exhausted_retries_degrade_to_cpu(self):
        sim, svc = _service(pool=PoolConfig(n_devices=1, n_cpu_workers=1,
                                            max_retries=0),
                            hangs=(ServeHang(0, 0),))
        done = svc.submit(SolveRequest(rid=0, nx=32, ny=32, iterations=8))
        sim.run()
        out = done.value
        assert out.status == "degraded"
        assert out.backend_used == "cpu" and out.worker == "cpu-0"
        assert out.request.backend == "device"   # original preserved
        assert svc.metrics.counters["degraded"] == 1
        text = svc.metrics.trace.to_text()
        assert "degraded" in text and "to-cpu" in text

    def test_degraded_output_is_the_correct_cpu_solve(self):
        sim, svc = _service(pool=PoolConfig(n_devices=1, n_cpu_workers=1,
                                            max_retries=0),
                            hangs=(ServeHang(0, 0),))
        svc.submit(SolveRequest(rid=0, nx=32, ny=32, iterations=8))
        sim.run()
        solves, annotated = run_solve_postpass(svc.outcomes, jobs=1)
        key = solve_key("cpu", 32, 32, 8)
        assert annotated[0].solve_key == key
        u = jacobi_solve_f32(LaplaceProblem(nx=32, ny=32).initial_grid_f32(),
                             8)
        expect = hashlib.sha256(
            np.ascontiguousarray(u).tobytes()).hexdigest()
        assert solves[key]["grid_sha"] == expect

    def test_no_fallback_sheds_loudly(self):
        sim, svc = _service(pool=PoolConfig(n_devices=1, n_cpu_workers=0,
                                            max_retries=0),
                            hangs=(ServeHang(0, 0),))
        done = svc.submit(SolveRequest(rid=0, nx=32, ny=32))
        sim.run()
        assert not done.ok
        assert done.value.reason == "retries_exhausted"
        out = svc.outcomes[0]
        assert out.status == "shed"
        assert out.shed_reason == "retries_exhausted"
        assert svc.metrics.counters["shed.retries_exhausted"] == 1

    def test_wedged_member_cools_down_then_returns(self):
        sim, svc = _service(pool=PoolConfig(n_devices=1, n_cpu_workers=0,
                                            max_retries=1),
                            hangs=(ServeHang(0, 0),))
        done = svc.submit(SolveRequest(rid=0, nx=32, ny=32))
        sim.run()
        # One device: the retry must wait out the cooldown, then succeed
        # on the same (recovered) member.
        out = done.value
        assert out.status == "completed" and out.worker == "e150-0"
        assert out.start_s >= svc.pool_cfg.hang_cooldown_s


class TestDeterminism:
    @staticmethod
    def _run_once():
        sim, svc = _service(pool=PoolConfig(n_devices=2, n_cpu_workers=1),
                            hangs=(ServeHang(0, 1),))
        for rid in range(8):
            backend = "cpu" if rid % 4 == 0 else "device"
            svc.submit(SolveRequest(rid=rid, nx=32, ny=32,
                                    backend=backend, priority=rid % 3))
        sim.run()
        return [(o.request.rid, o.status, o.worker, o.batch_id,
                 o.start_s, o.finish_s) for o in svc.outcomes]

    def test_repeat_runs_identical(self):
        assert self._run_once() == self._run_once()
