"""Determinism regression tests for the engine fast paths.

Every optimisation in the simulator (run-loop inlining, synchronous CB
try-paths, fused charge regions, burst coalescing) is required to leave
the *simulation* bit-identical: same final simulated time, same number
of processed events, same solver output bits.  These tests pin that
contract by running the Table I single-core Jacobi and a 4-core
multicore Jacobi twice in-process and across the
``REPRO_ENGINE_FASTPATH`` toggle.
"""

import hashlib

import numpy as np
import pytest

from repro.arch.device import GrayskullDevice
from repro.core.grid import LaplaceProblem
from repro.core.jacobi_initial import InitialConfig, InitialJacobiRunner
from repro.core.jacobi_optimized import OptimizedJacobiRunner


def _grid_sha(grid_bits) -> str:
    return hashlib.sha256(
        np.ascontiguousarray(grid_bits).tobytes()).hexdigest()


def _run_single_core():
    """The Table I workload shape: initial single-core Jacobi."""
    dev = GrayskullDevice(dram_bank_capacity=16 << 20)
    res = InitialJacobiRunner(dev, LaplaceProblem(nx=64, ny=64),
                              InitialConfig.initial()).run(2)
    return {
        "sim_now": dev.sim.now,
        "events": dev.sim.events_processed,
        "kernel_time_s": res.kernel_time_s,
        "grid_sha": _grid_sha(res.grid_bits),
    }


def _run_multicore():
    """A 4-core (2x2) optimised multicore Jacobi."""
    dev = GrayskullDevice(dram_bank_capacity=16 << 20)
    res = OptimizedJacobiRunner(dev, LaplaceProblem(nx=64, ny=64),
                                cores_y=2, cores_x=2).run(2)
    return {
        "sim_now": dev.sim.now,
        "events": dev.sim.events_processed,
        "kernel_time_s": res.kernel_time_s,
        "grid_sha": _grid_sha(res.grid_bits),
    }


WORKLOADS = [("single_core", _run_single_core),
             ("multicore_2x2", _run_multicore)]


@pytest.mark.parametrize("name,run", WORKLOADS,
                         ids=[w[0] for w in WORKLOADS])
def test_repeat_runs_bit_identical(name, run):
    """Two identical runs in one process agree on every invariant."""
    a, b = run(), run()
    assert a == b


@pytest.mark.parametrize("name,run", WORKLOADS,
                         ids=[w[0] for w in WORKLOADS])
def test_fastpath_toggle_bit_identical(name, run, monkeypatch):
    """``REPRO_ENGINE_FASTPATH=0`` and ``=1`` are indistinguishable.

    The toggle gates only the inlined run loop — a CPU micro-
    optimisation that must not change which events exist, when they
    fire, or what the solver computes.  Exact equality on floats is
    deliberate: "close" would hide a resequencing bug.
    """
    monkeypatch.setenv("REPRO_ENGINE_FASTPATH", "0")
    slow = run()
    monkeypatch.setenv("REPRO_ENGINE_FASTPATH", "1")
    fast = run()
    assert slow == fast


def test_fastpath_constructor_override():
    """``Simulator(fastpath=...)`` wins over the environment default."""
    from repro.sim import Simulator
    assert Simulator(fastpath=False).fastpath is False
    assert Simulator(fastpath=True).fastpath is True


@pytest.mark.parametrize("value,expected", [
    ("0", False), ("false", False), ("off", False), ("no", False),
    ("1", True), ("true", True), ("", True),
])
def test_fastpath_env_parsing(value, expected, monkeypatch):
    from repro.sim import Simulator
    monkeypatch.setenv("REPRO_ENGINE_FASTPATH", value)
    assert Simulator().fastpath is expected
