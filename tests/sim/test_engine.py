"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Event, Interrupt, Process, SimulationError, Simulator
from repro.sim.engine import AllOf, AnyOf, Timeout


class TestTimeAdvance:
    def test_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_timeout_advances_clock(self, sim):
        def proc():
            yield sim.timeout(1.5)
        sim.run(until=sim.process(proc()))
        assert sim.now == pytest.approx(1.5)

    def test_sequential_timeouts_accumulate(self, sim):
        def proc():
            yield sim.timeout(1.0)
            yield sim.timeout(2.0)
        sim.run(until=sim.process(proc()))
        assert sim.now == pytest.approx(3.0)

    def test_negative_timeout_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-1.0)

    def test_zero_timeout_allowed(self, sim):
        def proc():
            yield sim.timeout(0.0)
            return "done"
        assert sim.run(until=sim.process(proc())) == "done"

    def test_run_until_deadline(self, sim):
        def proc():
            yield sim.timeout(10.0)
        sim.process(proc())
        sim.run(until=3.0)
        assert sim.now == pytest.approx(3.0)

    def test_run_empty_queue_to_deadline(self, sim):
        sim.run(until=5.0)
        assert sim.now == pytest.approx(5.0)


class TestProcesses:
    def test_return_value(self, sim):
        def proc():
            yield sim.timeout(1)
            return 42
        assert sim.run(until=sim.process(proc())) == 42

    def test_requires_generator(self, sim):
        def not_a_gen():
            return 5
        with pytest.raises(TypeError, match="generator"):
            sim.process(not_a_gen)  # type: ignore[arg-type]

    def test_yield_non_event_rejected(self, sim):
        def proc():
            yield 42
        with pytest.raises(SimulationError, match="yield Event"):
            sim.run(until=sim.process(proc()))

    def test_join_process(self, sim):
        def child():
            yield sim.timeout(2)
            return "child-result"

        def parent():
            result = yield sim.process(child())
            return result
        assert sim.run(until=sim.process(parent())) == "child-result"
        assert sim.now == pytest.approx(2.0)

    def test_yield_from_composition(self, sim):
        def helper():
            yield sim.timeout(1)
            return 10

        def proc():
            a = yield from helper()
            b = yield from helper()
            return a + b
        assert sim.run(until=sim.process(proc())) == 20
        assert sim.now == pytest.approx(2.0)

    def test_crash_without_joiner_surfaces(self, sim):
        def bad():
            yield sim.timeout(1)
            raise ValueError("boom")
        sim.process(bad())
        with pytest.raises(SimulationError, match="crashed"):
            sim.run()

    def test_crash_propagates_to_joiner(self, sim):
        def bad():
            yield sim.timeout(1)
            raise ValueError("boom")

        def parent():
            try:
                yield sim.process(bad())
            except ValueError:
                return "caught"
        assert sim.run(until=sim.process(parent())) == "caught"

    def test_interrupt(self, sim):
        def victim():
            try:
                yield sim.timeout(100)
            except Interrupt as e:
                return f"interrupted:{e.cause}"

        def attacker(v):
            yield sim.timeout(1)
            v.interrupt("why")
        v = sim.process(victim())
        sim.process(attacker(v))
        assert sim.run(until=v) == "interrupted:why"
        assert sim.now == pytest.approx(1.0)

    def test_interrupt_finished_process_rejected(self, sim):
        def quick():
            yield sim.timeout(0)
        p = sim.process(quick())
        sim.run(until=p)
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_concurrent_processes_interleave(self, sim):
        log = []

        def worker(name, delay):
            yield sim.timeout(delay)
            log.append((name, sim.now))
        sim.process(worker("a", 2))
        sim.process(worker("b", 1))
        sim.run()
        assert log == [("b", 1.0), ("a", 2.0)]


class TestEvents:
    def test_manual_succeed(self, sim):
        ev = sim.event()

        def proc():
            val = yield ev
            return val
        p = sim.process(proc())
        ev.succeed("hello")
        assert sim.run(until=p) == "hello"

    def test_double_trigger_rejected(self, sim):
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")  # type: ignore[arg-type]

    def test_fail_throws_into_waiter(self, sim):
        ev = sim.event()

        def proc():
            try:
                yield ev
            except RuntimeError as e:
                return str(e)
        p = sim.process(proc())
        ev.fail(RuntimeError("bad"))
        assert sim.run(until=p) == "bad"

    def test_value_before_trigger_rejected(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_waiting_on_processed_event(self, sim):
        """A process that yields an already-processed event resumes."""
        ev = sim.event()
        ev.succeed("early")
        sim.run()  # processes the event

        def proc():
            val = yield ev
            return val
        assert sim.run(until=sim.process(proc())) == "early"


class TestConditions:
    def test_all_of(self, sim):
        def proc():
            vals = yield sim.all_of([sim.timeout(1, "a"), sim.timeout(3, "b")])
            return vals
        assert sim.run(until=sim.process(proc())) == ["a", "b"]
        assert sim.now == pytest.approx(3.0)

    def test_all_of_empty(self, sim):
        def proc():
            vals = yield sim.all_of([])
            return vals
        assert sim.run(until=sim.process(proc())) == []

    def test_any_of(self, sim):
        def proc():
            idx, val = yield sim.any_of(
                [sim.timeout(5, "slow"), sim.timeout(1, "fast")])
            return idx, val
        assert sim.run(until=sim.process(proc())) == (1, "fast")
        assert sim.now == pytest.approx(1.0)

    def test_any_of_duplicate_event_reports_its_index(self, sim):
        """The same Event listed twice must not always report index 0."""
        slow = sim.timeout(5, "slow")
        fast = sim.timeout(1, "fast")

        def proc():
            idx, val = yield sim.any_of([slow, fast, fast])
            return idx, val
        # The first registration of `fast` fires first: index 1, not 0.
        assert sim.run(until=sim.process(proc())) == (1, "fast")

    def test_any_of_duplicate_only_triggers_once(self, sim):
        ev = sim.event()
        cond = sim.any_of([ev, ev])
        ev.succeed("x")
        sim.run()
        assert cond.value == (0, "x")

    def test_all_of_duplicate_event_counts_each_listing(self, sim):
        """AllOf([e, e]) must wait for both *listings*, i.e. complete when
        e fires — not hang at 1/2 nor double-complete."""
        ev = sim.event()

        def proc():
            vals = yield sim.all_of([ev, ev])
            return vals
        p = sim.process(proc())
        ev.succeed("v")
        assert sim.run(until=p) == ["v", "v"]

    def test_all_of_mixed_duplicates(self, sim):
        a = sim.timeout(1, "a")
        b = sim.timeout(2, "b")

        def proc():
            vals = yield sim.all_of([a, b, a])
            return vals
        assert sim.run(until=sim.process(proc())) == ["a", "b", "a"]
        assert sim.now == pytest.approx(2.0)


class TestDeterminism:
    def test_fifo_among_simultaneous(self, sim):
        log = []

        def worker(name):
            yield sim.timeout(1.0)
            log.append(name)
        for name in ("a", "b", "c"):
            sim.process(worker(name))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_repeatable(self):
        def build_and_run():
            s = Simulator()
            log = []

            def w(n, d):
                yield s.timeout(d)
                log.append(n)
            for i in range(20):
                s.process(w(i, (i * 7) % 5))
            s.run()
            return log
        assert build_and_run() == build_and_run()

    def test_max_events_guard(self, sim):
        def forever():
            while True:
                yield sim.timeout(1)
        sim.process(forever())
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=100)

    def test_deadlock_detected(self, sim):
        ev = sim.event()

        def stuck():
            yield ev
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run(until=sim.process(stuck()))

    def test_events_processed_counter(self, sim):
        def proc():
            yield sim.timeout(1)
            yield sim.timeout(1)
        sim.run(until=sim.process(proc()))
        assert sim.events_processed >= 3  # boot + two timeouts

    def test_peek(self, sim):
        assert sim.peek() == float("inf")
        sim.timeout(2.5)
        assert sim.peek() == pytest.approx(2.5)


class TestTriggerDelayValidation:
    """succeed() and fail() must validate delays identically."""

    def test_succeed_rejects_none_delay(self, sim):
        with pytest.raises(ValueError, match="None"):
            sim.event().succeed("v", delay=None)  # type: ignore[arg-type]

    def test_fail_rejects_none_delay(self, sim):
        # Historically fail() silently coerced None to 0.0.
        with pytest.raises(ValueError, match="None"):
            sim.event().fail(RuntimeError("x"), delay=None)  # type: ignore[arg-type]

    def test_succeed_rejects_negative_delay(self, sim):
        with pytest.raises(ValueError, match="negative"):
            sim.event().succeed("v", delay=-1.0)

    def test_fail_rejects_negative_delay(self, sim):
        with pytest.raises(ValueError, match="negative"):
            sim.event().fail(RuntimeError("x"), delay=-0.5)

    def test_succeed_rejects_non_numeric_delay(self, sim):
        with pytest.raises(ValueError, match="real number"):
            sim.event().succeed("v", delay="soon")  # type: ignore[arg-type]

    def test_rejected_delay_leaves_event_pending(self, sim):
        ev = sim.event()
        with pytest.raises(ValueError):
            ev.succeed("v", delay=-1.0)
        assert not ev.triggered
        ev.succeed("v", delay=1.0)  # still usable
        sim.run()
        assert ev.value == "v"

    def test_integer_delay_accepted(self, sim):
        ev = sim.event()
        ev.succeed("v", delay=2)
        sim.run()
        assert sim.now == pytest.approx(2.0)


class TestDeadlockDiagnostics:
    def test_report_names_stranded_process(self, sim):
        gate = sim.event(name="the-gate")

        def stuck():
            yield gate
        p = sim.process(stuck(), name="stuck-proc")
        with pytest.raises(SimulationError) as exc_info:
            sim.run(until=p)
        msg = str(exc_info.value)
        assert "deadlock" in msg
        assert "stuck-proc" in msg
        assert "the-gate" in msg

    def test_report_includes_wait_start_time(self, sim):
        gate = sim.event(name="gate")

        def stuck():
            yield sim.timeout(2.5)
            yield gate
        p = sim.process(stuck(), name="late-waiter")
        with pytest.raises(SimulationError, match=r"since t=2\.5"):
            sim.run(until=p)

    def test_report_lists_multiple_processes(self, sim):
        gate = sim.event(name="shared")

        def stuck():
            yield gate

        def forever():
            yield sim.process(stuck(), name="w-a")
        sim.process(stuck(), name="w-b")
        p = sim.process(forever(), name="joiner")
        with pytest.raises(SimulationError) as exc_info:
            sim.run(until=p)
        msg = str(exc_info.value)
        assert "w-a" in msg and "w-b" in msg and "joiner" in msg

    def test_stranded_processes_helper(self, sim):
        gate = sim.event(name="gate")

        def stuck():
            yield gate

        def done():
            yield sim.timeout(1)
        alive = sim.process(stuck(), name="alive")
        sim.process(done(), name="finished")
        sim.run()
        assert sim.stranded_processes() == [alive]
