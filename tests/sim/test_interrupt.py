"""Process.interrupt / Interrupt semantics (the watchdog's foundation)."""

import pytest

from repro.sim import Interrupt, SimulationError


class TestInterruptWhileWaiting:
    def test_interrupt_carries_cause(self, sim):
        def victim():
            try:
                yield sim.timeout(100)
            except Interrupt as e:
                return e.cause
        v = sim.process(victim())

        def attacker():
            yield sim.timeout(1)
            v.interrupt(cause={"reason": "watchdog"})
        sim.process(attacker())
        assert sim.run(until=v) == {"reason": "watchdog"}
        assert sim.now == pytest.approx(1.0)

    def test_uncaught_interrupt_fails_the_process(self, sim):
        def victim():
            yield sim.timeout(100)
        v = sim.process(victim())

        def joiner():
            try:
                yield v
            except Interrupt as e:
                return f"saw:{e.cause}"
        j = sim.process(joiner())
        v.interrupt("bang")
        assert sim.run(until=j) == "saw:bang"
        assert v.triggered and not v.ok

    def test_interrupted_process_can_continue(self, sim):
        """An interrupt is a nudge, not a kill: the generator may resume."""
        def victim():
            try:
                yield sim.timeout(100)
            except Interrupt:
                pass
            yield sim.timeout(2)          # keeps running after the poke
            return sim.now
        v = sim.process(victim())

        def attacker():
            yield sim.timeout(1)
            v.interrupt()
        sim.process(attacker())
        assert sim.run(until=v) == pytest.approx(3.0)

    def test_stale_wait_callback_is_harmless(self, sim):
        """The abandoned event's later firing must not re-resume the victim."""
        slow = sim.timeout(5, "slow-value")

        def victim():
            try:
                yield slow
            except Interrupt:
                return "interrupted"
        v = sim.process(victim())
        v.interrupt()
        assert sim.run(until=v) == "interrupted"
        sim.run()                          # let `slow` fire afterwards
        assert v.value == "interrupted"    # unchanged


class TestInterruptRaces:
    def test_interrupt_racing_normal_completion(self, sim):
        """Interrupt scheduled the same instant the process finishes: the
        completion wins and the interrupt is dropped, not an error."""
        def victim():
            yield sim.timeout(1)
            return "finished"
        v = sim.process(victim())

        def attacker():
            yield sim.timeout(1)
            if v.is_alive:
                v.interrupt("too-late?")
        sim.process(attacker())
        assert sim.run(until=v) == "finished"

    def test_interrupt_just_before_completion(self, sim):
        def victim():
            try:
                yield sim.timeout(1.0)
                return "finished"
            except Interrupt:
                return "interrupted"
        v = sim.process(victim())

        def attacker():
            yield sim.timeout(0.5)
            v.interrupt()
        sim.process(attacker())
        assert sim.run(until=v) == "interrupted"
        assert sim.now == pytest.approx(0.5)

    def test_double_interrupt_delivers_both(self, sim):
        hits = []

        def victim():
            for _ in range(2):
                try:
                    yield sim.timeout(100)
                except Interrupt as e:
                    hits.append(e.cause)
            return hits
        v = sim.process(victim())
        v.interrupt("first")
        v.interrupt("second")
        assert sim.run(until=v) == ["first", "second"]


class TestInterruptFinished:
    def test_interrupting_finished_process_raises(self, sim):
        def quick():
            yield sim.timeout(0)
        p = sim.process(quick())
        sim.run(until=p)
        with pytest.raises(SimulationError, match="finished"):
            p.interrupt()

    def test_interrupting_crashed_process_raises(self, sim):
        def bad():
            yield sim.timeout(0)
            raise ValueError("boom")
        p = sim.process(bad())
        p.add_callback(lambda _e: None)   # join it: crash isn't "unhandled"
        sim.run()
        assert p.triggered and not p.ok
        with pytest.raises(SimulationError):
            p.interrupt()
