"""Unit + property tests for semaphores, channels, resources, FifoServer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Channel, Mutex, Resource, Semaphore, SimulationError, Simulator
from repro.sim.resources import FifoServer


class TestSemaphore:
    def test_acquire_available(self, sim):
        sem = Semaphore(sim, value=2)

        def proc():
            yield sem.acquire()
            return sem.value
        assert sim.run(until=sim.process(proc())) == 1

    def test_acquire_blocks_until_release(self, sim):
        sem = Semaphore(sim, value=0)

        def waiter():
            yield sem.acquire()
            return sim.now

        def releaser():
            yield sim.timeout(5)
            sem.release()
        w = sim.process(waiter())
        sim.process(releaser())
        assert sim.run(until=w) == pytest.approx(5.0)

    def test_fifo_fairness(self, sim):
        sem = Semaphore(sim, value=0)
        order = []

        def waiter(name):
            yield sem.acquire()
            order.append(name)
        for n in ("a", "b", "c"):
            sim.process(waiter(n))

        def releaser():
            for _ in range(3):
                yield sim.timeout(1)
                sem.release()
        sim.process(releaser())
        sim.run()
        assert order == ["a", "b", "c"]

    def test_no_overtaking_on_big_acquire(self, sim):
        """A blocked large acquire must not be starved by small ones."""
        sem = Semaphore(sim, value=0)
        order = []

        def big():
            yield sem.acquire(3)
            order.append("big")

        def small():
            yield sem.acquire(1)
            order.append("small")
        sim.process(big())
        sim.process(small())

        def releaser():
            yield sim.timeout(1)
            sem.release(4)
        sim.process(releaser())
        sim.run()
        assert order == ["big", "small"]

    def test_wait_at_least_nonconsuming(self, sim):
        sem = Semaphore(sim, value=0)

        def waiter():
            val = yield sem.wait_at_least(3)
            return val, sem.value
        w = sim.process(waiter())

        def releaser():
            yield sim.timeout(1)
            sem.release(3)
        sim.process(releaser())
        val, after = sim.run(until=w)
        assert val == 3
        assert after == 3  # not consumed

    def test_set_value(self, sim):
        sem = Semaphore(sim, value=5)
        sem.set_value(1)
        assert sem.value == 1
        with pytest.raises(ValueError):
            sem.set_value(-1)

    def test_bad_counts(self, sim):
        sem = Semaphore(sim)
        with pytest.raises(ValueError):
            sem.acquire(0)
        with pytest.raises(ValueError):
            sem.release(0)
        with pytest.raises(ValueError):
            Semaphore(sim, value=-1)


class TestMutex:
    def test_exclusion(self, sim):
        m = Mutex(sim)
        held = []

        def worker(name):
            yield m.acquire()
            held.append(name)
            assert m.locked
            yield sim.timeout(1)
            m.release()
        sim.process(worker("a"))
        sim.process(worker("b"))
        sim.run()
        assert held == ["a", "b"]
        assert not m.locked

    def test_release_unheld_rejected(self, sim):
        m = Mutex(sim)
        with pytest.raises(SimulationError):
            m.release()


class TestChannel:
    def test_put_get(self, sim):
        ch = Channel(sim)

        def producer():
            yield ch.put("x")

        def consumer():
            item = yield ch.get()
            return item
        sim.process(producer())
        c = sim.process(consumer())
        assert sim.run(until=c) == "x"

    def test_bounded_put_blocks(self, sim):
        ch = Channel(sim, capacity=1)
        t_done = []

        def producer():
            yield ch.put(1)
            yield ch.put(2)  # blocks until consumer takes
            t_done.append(sim.now)

        def consumer():
            yield sim.timeout(4)
            yield ch.get()
        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert t_done == [pytest.approx(4.0)]

    def test_fifo_order(self, sim):
        ch = Channel(sim)
        got = []

        def producer():
            for i in range(5):
                yield ch.put(i)

        def consumer():
            for _ in range(5):
                got.append((yield ch.get()))
        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_invalid_capacity(self, sim):
        with pytest.raises(ValueError):
            Channel(sim, capacity=0)


class TestResource:
    def test_capacity_respected(self, sim):
        res = Resource(sim, capacity=2)
        active = []
        peak = []

        def worker():
            yield res.request()
            active.append(1)
            peak.append(len(active))
            yield sim.timeout(1)
            active.pop()
            res.release()
        for _ in range(5):
            sim.process(worker())
        sim.run()
        assert max(peak) <= 2

    def test_using_helper(self, sim):
        res = Resource(sim, capacity=1)

        def worker():
            yield from res.using(2.0)
            return sim.now
        a = sim.process(worker())
        b = sim.process(worker())
        sim.run()
        assert a.value == pytest.approx(2.0)
        assert b.value == pytest.approx(4.0)

    def test_over_release_rejected(self, sim):
        res = Resource(sim)
        with pytest.raises(SimulationError):
            res.release()


class TestFifoServer:
    def test_single_job_time(self, sim):
        srv = FifoServer(sim, rate=100.0)
        ev = srv.submit(50)

        def proc():
            t = yield ev
            return t
        assert sim.run(until=sim.process(proc())) == pytest.approx(0.5)

    def test_jobs_serialize(self, sim):
        srv = FifoServer(sim, rate=100.0)
        srv.submit(100)          # busy until t=1
        ev = srv.submit(100)     # served 1..2
        sim.run()
        assert ev.value == pytest.approx(2.0)

    def test_overhead_per_job(self, sim):
        srv = FifoServer(sim, rate=1e9, overhead=0.1)
        ev = srv.submit(0, jobs=3)
        sim.run()
        assert ev.value == pytest.approx(0.3)

    def test_idle_gap_not_counted(self, sim):
        srv = FifoServer(sim, rate=100.0)

        def proc():
            yield srv.submit(100)
            yield sim.timeout(10)  # idle gap
            yield srv.submit(100)
            return sim.now
        assert sim.run(until=sim.process(proc())) == pytest.approx(12.0)
        assert srv.busy_time == pytest.approx(2.0)

    def test_stats(self, sim):
        srv = FifoServer(sim, rate=100.0)
        srv.submit(30, jobs=2)
        assert srv.bytes_served == 30
        assert srv.jobs == 2

    def test_invalid_params(self, sim):
        with pytest.raises(ValueError):
            FifoServer(sim, rate=0)
        with pytest.raises(ValueError):
            FifoServer(sim, rate=1, overhead=-1)
        srv = FifoServer(sim, rate=1)
        with pytest.raises(ValueError):
            srv.submit(-1)


@settings(max_examples=50, deadline=None)
@given(jobs=st.lists(st.integers(min_value=0, max_value=10_000),
                     min_size=1, max_size=30))
def test_fifo_server_completion_equals_total_service(jobs):
    """Back-to-back jobs finish exactly at the sum of their service times."""
    sim = Simulator()
    srv = FifoServer(sim, rate=1000.0, overhead=0.001)
    last = None
    for j in jobs:
        last = srv.submit(j)
    sim.run()
    expected = sum(0.001 + j / 1000.0 for j in jobs)
    assert last.value == pytest.approx(expected)


@settings(max_examples=50, deadline=None)
@given(ops=st.lists(st.tuples(st.sampled_from(["acq", "rel"]),
                              st.integers(1, 3)), max_size=40))
def test_semaphore_value_never_negative(ops):
    """Whatever the acquire/release sequence, the value stays >= 0."""
    sim = Simulator()
    sem = Semaphore(sim, value=2)

    def driver():
        for op, n in ops:
            if op == "acq":
                ev = sem.acquire(n)
                # do not wait for it; just ensure the invariant holds
            else:
                sem.release(n)
            assert sem.value >= 0
            yield sim.timeout(0)
    sim.process(driver())
    try:
        sim.run()
    except Exception:  # deadlocked acquires are fine for the invariant
        pass
    assert sem.value >= 0
