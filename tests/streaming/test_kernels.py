"""Streaming benchmark tests: functional copy, timing shapes."""

import numpy as np
import pytest

from repro.streaming import StreamConfig, run_streaming
from repro.streaming.kernels import _Group, _row_groups


class TestConfig:
    def test_defaults_use_full_row_batches(self):
        cfg = StreamConfig(rows=16, row_elems=64)
        assert cfg.read_batch == cfg.row_bytes == 256
        assert cfg.write_batch == 256

    def test_batch_must_divide_row(self):
        with pytest.raises(ValueError, match="divide"):
            StreamConfig(rows=16, row_elems=64, read_batch=100)

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            StreamConfig(rows=16, row_elems=64, read_batch=-4)
        with pytest.raises(ValueError):
            StreamConfig(rows=16, row_elems=64, replication=-1)
        with pytest.raises(ValueError):
            StreamConfig(rows=16, row_elems=64, n_cores=0)

    def test_totals(self):
        cfg = StreamConfig(rows=8, row_elems=16)
        assert cfg.total_bytes == 8 * 64


class TestGroups:
    def test_contiguous_one_group_per_row(self):
        cfg = StreamConfig(rows=4, row_elems=64, read_batch=64)
        groups = _row_groups(cfg, 0, 4, 64)
        assert len(groups) == 4
        assert groups[0] == _Group(0, 4, 64, 64)
        assert groups[1].start == 256

    def test_noncontiguous_column_sweep(self):
        cfg = StreamConfig(rows=4, row_elems=64, contiguous=False)
        groups = _row_groups(cfg, 0, 4, 64)
        # batch 64B, row 256B: 4 columns x 1 group of 4 rows each
        assert len(groups) == 4
        g = groups[1]
        assert g.stride == 256 and g.start == 64 and g.n == 4

    def test_groups_cover_all_bytes_once(self):
        cfg = StreamConfig(rows=8, row_elems=32, contiguous=False)
        groups = _row_groups(cfg, 0, 8, 32)
        seen = set()
        for g in groups:
            for off, size in g.ranges():
                for b in range(off, off + size):
                    assert b not in seen
                    seen.add(b)
        assert len(seen) == cfg.total_bytes


class TestFunctional:
    @pytest.mark.parametrize("contiguous", [True, False])
    def test_dram_to_dram_copy(self, contiguous):
        cfg = StreamConfig(rows=16, row_elems=128, read_batch=128,
                           write_batch=128, contiguous=contiguous,
                           verify=True)
        assert run_streaming(cfg).verified

    def test_copy_with_interleaving(self):
        cfg = StreamConfig(rows=16, row_elems=128, page_size=1 << 10,
                           verify=True)
        assert run_streaming(cfg).verified

    def test_copy_multicore(self):
        cfg = StreamConfig(rows=16, row_elems=128, n_cores=4, verify=True)
        assert run_streaming(cfg).verified

    def test_copy_with_sync(self):
        cfg = StreamConfig(rows=8, row_elems=64, read_batch=64,
                           write_batch=64, sync_read=True, sync_write=True,
                           verify=True)
        assert run_streaming(cfg).verified

    def test_request_accounting(self):
        cfg = StreamConfig(rows=8, row_elems=64, read_batch=64)
        res = run_streaming(cfg)
        assert res.read_requests == 8 * 4   # 4 batches per 256-byte row
        assert res.bytes_read == cfg.total_bytes
        assert res.bytes_written == cfg.total_bytes

    def test_replication_adds_reads(self):
        base = run_streaming(StreamConfig(rows=8, row_elems=64))
        repl = run_streaming(StreamConfig(rows=8, row_elems=64,
                                          replication=2))
        assert repl.bytes_read > base.bytes_read


class TestTimingShapes:
    """The Section-V lessons, at test scale."""

    def test_smaller_batches_slower(self):
        t = {}
        for batch in (1024, 16, 4):
            cfg = StreamConfig(rows=64, row_elems=256, read_batch=batch)
            t[batch] = run_streaming(cfg).runtime_s
        assert t[4] > t[16] > t[1024]

    def test_sync_slower_than_nosync(self):
        base = StreamConfig(rows=64, row_elems=256, read_batch=16)
        t_ns = run_streaming(base).runtime_s
        t_s = run_streaming(StreamConfig(rows=64, row_elems=256,
                                         read_batch=16,
                                         sync_read=True)).runtime_s
        assert t_s > t_ns

    def test_noncontiguous_slower(self):
        kw = dict(rows=64, row_elems=256, read_batch=16, write_batch=16)
        t_c = run_streaming(StreamConfig(**kw)).runtime_s
        t_nc = run_streaming(StreamConfig(contiguous=False, **kw)).runtime_s
        assert t_nc > t_c

    def test_read_batch_hurts_more_than_write_batch(self):
        """Table III: 'the impact of the batch size ... is far greater for
        reading than it is for writing'."""
        t_read = run_streaming(StreamConfig(rows=64, row_elems=256,
                                            read_batch=4)).runtime_s
        t_write = run_streaming(StreamConfig(rows=64, row_elems=256,
                                             write_batch=4)).runtime_s
        assert t_read > t_write

    def test_replication_scales_runtime(self):
        t1 = run_streaming(StreamConfig(rows=64, row_elems=1024)).runtime_s
        t8 = run_streaming(StreamConfig(rows=64, row_elems=1024,
                                        replication=7)).runtime_s
        assert t8 > 3 * t1

    def test_interleaving_helps_under_replication(self):
        kw = dict(rows=64, row_elems=1024, replication=15)
        t_single = run_streaming(StreamConfig(**kw)).runtime_s
        t_inter = run_streaming(StreamConfig(page_size=16 << 10,
                                             **kw)).runtime_s
        assert t_inter < t_single

    def test_two_cores_faster_one_bank(self):
        kw = dict(rows=256, row_elems=1024)
        t1 = run_streaming(StreamConfig(n_cores=1, **kw)).runtime_s
        t2 = run_streaming(StreamConfig(n_cores=2, **kw)).runtime_s
        assert t2 < t1

    def test_scaling_saturates_beyond_two_cores(self):
        """Table VII: no scaling beyond 2 cores on a shared stream."""
        kw = dict(rows=256, row_elems=1024)
        t2 = run_streaming(StreamConfig(n_cores=2, **kw)).runtime_s
        t8 = run_streaming(StreamConfig(n_cores=8, **kw)).runtime_s
        assert t8 > 0.6 * t2  # nowhere near 4x faster

    def test_runtime_scales_linearly_in_rows(self):
        t_small = run_streaming(StreamConfig(rows=64, row_elems=1024)).runtime_s
        t_big = run_streaming(StreamConfig(rows=256, row_elems=1024)).runtime_s
        assert t_big == pytest.approx(4 * t_small, rel=0.15)
