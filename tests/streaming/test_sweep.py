"""Sweep driver tests (reduced problem sizes)."""

import pytest

from repro.streaming import (
    StreamConfig,
    sweep_batch_sizes,
    sweep_multicore,
    sweep_page_sizes,
    sweep_replication,
)


@pytest.fixture
def base():
    return StreamConfig(rows=32, row_elems=256)


class TestBatchSweep:
    def test_rows_structured(self, base):
        rows = sweep_batch_sizes(base, [1024, 64], contiguous=True)
        assert [r.batch_size for r in rows] == [1024, 64]
        assert rows[0].requests_per_row == 1
        assert rows[1].requests_per_row == 16
        for r in rows:
            for v in (r.read_nosync_s, r.read_sync_s, r.write_nosync_s,
                      r.write_sync_s):
                assert v > 0

    def test_sync_at_least_nosync(self, base):
        for r in sweep_batch_sizes(base, [64, 16]):
            assert r.read_sync_s >= r.read_nosync_s * 0.99
            assert r.write_sync_s >= r.write_nosync_s * 0.99

    def test_invalid_batch_rejected(self, base):
        with pytest.raises(ValueError):
            sweep_batch_sizes(base, [100])

    def test_noncontiguous_slower_at_small_batches(self, base):
        c = sweep_batch_sizes(base, [16], contiguous=True)[0]
        nc = sweep_batch_sizes(base, [16], contiguous=False)[0]
        assert nc.read_nosync_s > c.read_nosync_s


class TestReplicationSweep:
    def test_monotone(self, base):
        rows = sweep_replication(base, factors=(1, 2, 4))
        runtimes = [t for _, t in rows]
        assert runtimes == sorted(runtimes)

    def test_factor_validates(self, base):
        with pytest.raises(ValueError):
            sweep_replication(base, factors=(0,))


class TestPageSweep:
    def test_shape(self, base):
        rows = sweep_page_sizes(base, page_sizes=[None, 1 << 10],
                                replications=(0, 2))
        assert len(rows) == 2
        assert rows[0][0] is None
        assert len(rows[0][1]) == 2

    def test_multicore_shape(self, base):
        rows = sweep_multicore(base, page_sizes=[None], core_counts=(1, 2))
        assert len(rows) == 1
        t1, t2 = rows[0][1]
        assert t2 < t1
