"""Tier-1 tests for the ``repro bench`` harness plumbing.

Fast by construction: they exercise the runner/schema with the
cheapest micro benchmark only, and the baseline comparator with
hand-built documents.  The full suite execution lives in
``benchmarks/perf/`` (tier 2).
"""

import pytest

from repro import bench


def _doc(results, smoke=True):
    return {"schema": bench.SCHEMA, "date": "2026-01-01", "smoke": smoke,
            "reps": 1, "fastpath": True, "python": "3.x",
            "results": results}


def _res(name="engine_events", value=100.0, higher=True, inv=None,
         metric="events_per_sec"):
    return {"name": name, "kind": "micro", "metric": metric,
            "value": value, "unit": "1/s", "higher_is_better": higher,
            "invariants": inv if inv is not None else {"events": 42}}


class TestCompare:
    def test_identical_passes(self):
        doc = _doc([_res()])
        assert bench.compare(doc, doc) == []

    def test_throughput_drop_within_tolerance_passes(self):
        base = _doc([_res(value=100.0)])
        cur = _doc([_res(value=85.0)])
        assert bench.compare(cur, base, tolerance=0.20) == []

    def test_throughput_drop_beyond_tolerance_fails(self):
        base = _doc([_res(value=100.0)])
        cur = _doc([_res(value=75.0)])
        failures = bench.compare(cur, base, tolerance=0.20)
        assert len(failures) == 1 and "regressed" in failures[0]

    def test_throughput_gain_always_passes(self):
        base = _doc([_res(value=100.0)])
        cur = _doc([_res(value=500.0)])
        assert bench.compare(cur, base) == []

    def test_wall_time_direction_is_lower_better(self):
        base = _doc([_res(name="jacobi_single", metric="wall_s",
                          value=1.0, higher=False)])
        ok = _doc([_res(name="jacobi_single", metric="wall_s",
                        value=1.15, higher=False)])
        bad = _doc([_res(name="jacobi_single", metric="wall_s",
                         value=1.5, higher=False)])
        assert bench.compare(ok, base, tolerance=0.20) == []
        assert bench.compare(bad, base, tolerance=0.20)

    def test_invariant_drift_fails_regardless_of_perf(self):
        base = _doc([_res(inv={"events": 42, "sim_now": 1.0})])
        cur = _doc([_res(value=1e9, inv={"events": 43, "sim_now": 1.0})])
        failures = bench.compare(cur, base)
        assert len(failures) == 1 and "invariants" in failures[0]

    def test_missing_benchmark_fails(self):
        base = _doc([_res(), _res(name="cb_roundtrip")])
        cur = _doc([_res()])
        failures = bench.compare(cur, base)
        assert any("missing" in f for f in failures)

    def test_extra_benchmark_in_current_is_fine(self):
        base = _doc([_res()])
        cur = _doc([_res(), _res(name="new_bench")])
        assert bench.compare(cur, base) == []

    def test_extra_benchmark_is_reported_as_note(self):
        base = _doc([_res()])
        cur = _doc([_res(), _res(name="new_bench")])
        notes = []
        assert bench.compare(cur, base, notes=notes) == []
        assert len(notes) == 1
        assert "new_bench" in notes[0] and "new benchmark" in notes[0]

    def test_no_notes_when_benchmark_sets_match(self):
        doc = _doc([_res()])
        notes = []
        assert bench.compare(doc, doc, notes=notes) == []
        assert notes == []

    def test_notes_do_not_mask_real_failures(self):
        base = _doc([_res(value=100.0)])
        cur = _doc([_res(value=50.0), _res(name="new_bench")])
        notes = []
        failures = bench.compare(cur, base, notes=notes)
        assert len(failures) == 1 and "regressed" in failures[0]
        assert len(notes) == 1 and "new_bench" in notes[0]

    def test_smoke_vs_full_mismatch_fails(self):
        base = _doc([_res()], smoke=True)
        cur = _doc([_res()], smoke=False)
        assert bench.compare(cur, base)

    def test_schema_mismatch_fails(self):
        base = _doc([_res()])
        cur = dict(_doc([_res()]), schema="something-else/9")
        assert bench.compare(cur, base)


class TestRunner:
    def test_engine_micro_runs_and_is_deterministic(self):
        doc = bench.run_benchmarks(smoke=True, reps=2,
                                   only=["engine_events"])
        assert doc["schema"] == bench.SCHEMA
        (res,) = doc["results"]
        assert res["value"] > 0
        assert res["invariants"]["events"] == 20_002

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            bench.run_benchmarks(only=["nope"])

    def test_inconsistent_invariants_raise(self, monkeypatch):
        calls = {"n": 0}

        def flaky(smoke):
            calls["n"] += 1
            return 0.01, 100.0, {"events": calls["n"]}

        monkeypatch.setitem(bench.BENCHMARKS, "flaky",
                            ("micro", "x_per_sec", "1/s", True, flaky))
        with pytest.raises(bench.BenchError, match="invariants changed"):
            bench.run_benchmarks(reps=2, only=["flaky"])

    def test_render_mentions_every_benchmark(self):
        doc = bench.run_benchmarks(smoke=True, reps=1,
                                   only=["engine_events"])
        text = bench.render(doc)
        assert "engine_events" in text and "events_per_sec" in text

    def test_default_report_path_is_datestamped(self):
        assert bench.default_report_path("2026-08-06") == \
            "BENCH_2026-08-06.json"


class TestSchemaAdditions:
    """PR: per-rep walls + host cpu_count, backward-compatible schema."""

    def test_doc_records_host_and_timing_mode(self):
        doc = bench.run_benchmarks(smoke=True, reps=1,
                                   only=["engine_events"])
        import os
        assert doc["cpu_count"] == os.cpu_count()
        assert doc["timings"] == "sequential"
        assert doc["invariant_prepass"] is None   # sequential run

    def test_results_carry_per_rep_walls(self):
        doc = bench.run_benchmarks(smoke=True, reps=3,
                                   only=["jacobi_single"])
        (res,) = doc["results"]
        assert len(res["rep_walls"]) == 3
        assert all(w > 0 for w in res["rep_walls"])
        # wall_s benchmarks keep the best (minimum) rep as headline
        assert res["value"] == min(res["rep_walls"])

    def test_old_baseline_without_new_keys_still_compares(self):
        # a pre-PR baseline has neither rep_walls nor cpu_count; the
        # comparator must accept it unchanged.
        doc = bench.run_benchmarks(smoke=True, reps=1,
                                   only=["engine_events"])
        old = _doc([dict(doc["results"][0])])
        old["results"][0].pop("rep_walls", None)
        assert bench.compare(doc, old) == []

    def test_parallel_prepass_checks_invariants(self):
        # jobs=2 runs the macro invariant prepass through the sweep
        # engine; timings stay sequential and the doc says so.
        doc = bench.run_benchmarks(smoke=True, reps=1,
                                   only=["engine_events", "jacobi_single"],
                                   jobs=2)
        assert doc["timings"] == "sequential"
        pre = doc["invariant_prepass"]
        assert pre is not None and pre["jobs"] == 2
        assert "jacobi_single" in pre["benchmarks"]
        # micro benchmarks are not part of the prepass
        assert "engine_events" not in pre["benchmarks"]
