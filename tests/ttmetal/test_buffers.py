"""Buffer tests: placement, logical addressing, interleave bijection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.device import GrayskullDevice
from repro.ttmetal.buffers import Buffer, BufferConfig, create_buffer


class TestConfig:
    def test_interleaved_needs_page_size(self):
        with pytest.raises(ValueError):
            BufferConfig(size=1024, interleaved=True)

    def test_page_size_only_for_interleaved(self):
        with pytest.raises(ValueError):
            BufferConfig(size=1024, page_size=256)

    def test_positive_size(self):
        with pytest.raises(ValueError):
            BufferConfig(size=0)


class TestSingleBank:
    def test_locate_single_segment(self, device):
        buf = create_buffer(device, 4096, bank_id=2)
        segs = buf.locate(100, 200)
        assert len(segs) == 1
        assert segs[0].bank_id == 2
        assert segs[0].addr == buf.addr + 100
        assert segs[0].size == 200

    def test_host_roundtrip(self, device, rng):
        buf = create_buffer(device, 1024)
        data = rng.integers(0, 256, 1024, dtype=np.uint8)
        buf.write_host(data)
        assert np.array_equal(buf.read_host(), data)

    def test_partial_host_access(self, device, rng):
        buf = create_buffer(device, 1024)
        data = rng.integers(0, 256, 256, dtype=np.uint8)
        buf.write_host(data, offset=512)
        assert np.array_equal(buf.read_host(512, 256), data)

    def test_round_robin_banks(self, device):
        banks = [create_buffer(device, 64).bank_id for _ in range(8)]
        assert sorted(banks) == list(range(8))

    def test_noc_coords(self, device):
        buf = create_buffer(device, 64, bank_id=5)
        assert device.bank_from_noc_coords(*buf.noc_coords()) == 5

    def test_out_of_range_locate(self, device):
        buf = create_buffer(device, 128)
        with pytest.raises(IndexError):
            buf.locate(100, 100)

    def test_locate_empty(self, device):
        buf = create_buffer(device, 128)
        assert buf.locate(64, 0) == []


class TestInterleaved:
    def test_pages_cycle_banks(self, device):
        buf = create_buffer(device, 8 * 1024, interleaved=True, page_size=1024)
        assert [buf.page_location(p)[0] for p in range(8)] == list(range(8))

    def test_locate_splits_at_page_boundary(self, device):
        buf = create_buffer(device, 8 * 1024, interleaved=True, page_size=1024)
        segs = buf.locate(1000, 100)
        assert len(segs) == 2
        assert segs[0].size == 24 and segs[1].size == 76
        assert segs[0].bank_id != segs[1].bank_id

    def test_locate_within_page(self, device):
        buf = create_buffer(device, 8 * 1024, interleaved=True, page_size=1024)
        segs = buf.locate(100, 200)
        assert len(segs) == 1

    def test_host_roundtrip_interleaved(self, device, rng):
        buf = create_buffer(device, 5000, interleaved=True, page_size=512)
        data = rng.integers(0, 256, 5000, dtype=np.uint8)
        buf.write_host(data)
        assert np.array_equal(buf.read_host(), data)

    def test_page_location_requires_interleaved(self, device):
        buf = create_buffer(device, 64)
        with pytest.raises(ValueError):
            buf.page_location(0)

    def test_noc_coords_requires_single_bank(self, device):
        inter = create_buffer(device, 512, interleaved=True, page_size=256)
        with pytest.raises(ValueError):
            inter.noc_coords()


class TestUniformAccess:
    def test_gather_contiguous(self, device, rng):
        buf = create_buffer(device, 1024)
        data = rng.integers(0, 256, 1024, dtype=np.uint8)
        buf.write_host(data)
        got = buf.gather_uniform(0, 4, 256, 256)
        assert np.array_equal(got, data)

    def test_gather_strided(self, device, rng):
        buf = create_buffer(device, 1024)
        data = rng.integers(0, 256, 1024, dtype=np.uint8)
        buf.write_host(data)
        got = buf.gather_uniform(0, 4, 64, 256)
        want = np.concatenate([data[i * 256:i * 256 + 64] for i in range(4)])
        assert np.array_equal(got, want)

    def test_scatter_contiguous(self, device, rng):
        buf = create_buffer(device, 1024)
        data = rng.integers(0, 256, 512, dtype=np.uint8)
        buf.scatter_uniform(256, 2, 256, 256, data)
        assert np.array_equal(buf.read_host(256, 512), data)

    def test_scatter_strided(self, device, rng):
        buf = create_buffer(device, 1024)
        data = rng.integers(0, 256, 128, dtype=np.uint8)
        buf.scatter_uniform(0, 2, 64, 512, data)
        assert np.array_equal(buf.read_host(0, 64), data[:64])
        assert np.array_equal(buf.read_host(512, 64), data[64:])

    def test_gather_scatter_roundtrip(self, device, rng):
        buf = create_buffer(device, 2048)
        payload = rng.integers(0, 256, 256, dtype=np.uint8)
        buf.scatter_uniform(0, 8, 32, 256, payload)
        assert np.array_equal(buf.gather_uniform(0, 8, 32, 256), payload)

    def test_uniform_rejects_interleaved(self, device):
        buf = create_buffer(device, 2048, interleaved=True, page_size=512)
        with pytest.raises(ValueError):
            buf.gather_uniform(0, 2, 64, 256)

    def test_uniform_bounds(self, device):
        buf = create_buffer(device, 512)
        with pytest.raises(IndexError):
            buf.gather_uniform(0, 3, 128, 256)

    def test_scatter_size_mismatch(self, device):
        buf = create_buffer(device, 512)
        with pytest.raises(ValueError):
            buf.scatter_uniform(0, 2, 64, 128, np.zeros(100, dtype=np.uint8))


@settings(max_examples=40, deadline=None)
@given(size=st.integers(1, 5000), page=st.sampled_from([64, 256, 1024]),
       seed=st.integers(0, 999))
def test_interleaved_addressing_is_a_bijection(size, page, seed):
    """Write-then-read through the interleaved map is the identity, and
    distinct logical bytes map to distinct physical locations."""
    device = GrayskullDevice(dram_bank_capacity=1 << 20)
    buf = create_buffer(device, size, interleaved=True, page_size=page)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size, dtype=np.uint8)
    buf.write_host(data)
    assert np.array_equal(buf.read_host(), data)
    # physical locations are unique
    seen = set()
    for seg in buf.locate(0, size):
        for b in range(seg.size):
            key = (seg.bank_id, seg.addr + b)
            assert key not in seen
            seen.add(key)
