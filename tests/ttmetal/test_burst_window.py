"""Rotating-window burst semantics: read placement and write gather mirror.

A burst with ``window=w`` streams its payload through a ``w``-byte L1
scratch: stream byte ``j`` lives at window position ``j % w`` (reads),
and the write path must gather stream byte ``j`` from ``j % w`` —
including ranges that wrap the window more than once.
"""

import numpy as np
import pytest

from repro.arch.tensix import DATA_MOVER_0, DATA_MOVER_1
from repro.ttmetal import (
    CreateKernel,
    EnqueueProgram,
    EnqueueWriteBuffer,
    Finish,
    Program,
    create_buffer,
)


def launch(device, kernels):
    prog = Program(device)
    core = device.core(0, 0)
    for fn, slot, args in kernels:
        CreateKernel(prog, fn, core, slot, args)
    EnqueueProgram(device, prog)
    return Finish(device)


def cyclic_placement(data: np.ndarray, win: int) -> np.ndarray:
    """Reference model: stream byte j lands at j % win, later bytes win."""
    window = np.zeros(win, dtype=np.uint8)
    for j in range(data.size):
        window[j % win] = data[j]
    return window


class TestUniformRoundTrip:
    def test_exact_round_trip_without_wrap(self, device, rng):
        n, batch = 8, 64
        total = n * batch
        src = create_buffer(device, total, bank_id=0)
        dst = create_buffer(device, total, bank_id=1)
        data = rng.integers(0, 256, total, dtype=np.uint8)
        EnqueueWriteBuffer(device, src, data)

        def mover(ctx):
            l1 = ctx.core.sram.allocate(total)
            yield from ctx.noc_read_buffer_burst_uniform(
                src, 0, n, batch, batch, l1, window=total)
            yield from ctx.noc_async_read_barrier()
            yield from ctx.noc_write_buffer_burst_uniform(
                dst, 0, n, batch, batch, l1, window=total)
            yield from ctx.noc_async_write_barrier()
        launch(device, [(mover, DATA_MOVER_0, {})])
        assert np.array_equal(dst.read_host(), data)

    def test_wrapping_round_trip_matches_cyclic_model(self, device, rng):
        n, batch, win = 6, 64, 160          # total=384: wraps 2.4 windows
        total = n * batch
        src = create_buffer(device, total, bank_id=0)
        dst = create_buffer(device, total, bank_id=1)
        data = rng.integers(0, 256, total, dtype=np.uint8)
        EnqueueWriteBuffer(device, src, data)

        def mover(ctx):
            l1 = ctx.core.sram.allocate(win)
            yield from ctx.noc_read_buffer_burst_uniform(
                src, 0, n, batch, batch, l1, window=win)
            yield from ctx.noc_async_read_barrier()
            yield from ctx.noc_write_buffer_burst_uniform(
                dst, 0, n, batch, batch, l1, window=win)
            yield from ctx.noc_async_write_barrier()
        launch(device, [(mover, DATA_MOVER_0, {})])
        window = cyclic_placement(data, win)
        expected = window[np.arange(total) % win]
        assert np.array_equal(dst.read_host(), expected)


class TestRangesGather:
    def test_multiwrap_range_is_not_truncated(self, device, rng):
        """One write range longer than two windows: every byte must come
        from the modular gather (the old two-slice path clipped it)."""
        win, size = 40, 100                  # size - (win - pos) > win
        dst = create_buffer(device, size, bank_id=0)
        window_data = rng.integers(0, 256, win, dtype=np.uint8)

        def writer(ctx):
            l1 = ctx.core.sram.allocate(win)
            ctx.core.sram.view(l1, win)[:] = window_data
            yield from ctx.noc_write_buffer_burst(
                dst, [(0, size)], l1, window=win)
            yield from ctx.noc_async_write_barrier()
        launch(device, [(writer, DATA_MOVER_0, {})])
        expected = window_data[np.arange(size) % win]
        assert np.array_equal(dst.read_host(), expected)

    def test_ranges_write_matches_uniform_write(self, device, rng):
        """The per-range and uniform write paths must agree byte-for-byte
        when describing the same transfer out of the same window."""
        n, batch, win = 5, 32, 48
        total = n * batch
        dst_a = create_buffer(device, total, bank_id=0)
        dst_b = create_buffer(device, total, bank_id=1)
        window_data = rng.integers(0, 256, win, dtype=np.uint8)

        def writer_ranges(ctx):
            l1 = ctx.core.sram.allocate(win)
            ctx.core.sram.view(l1, win)[:] = window_data
            ranges = [(i * batch, batch) for i in range(n)]
            yield from ctx.noc_write_buffer_burst(
                dst_a, ranges, l1, window=win)
            yield from ctx.noc_async_write_barrier()

        def writer_uniform(ctx):
            l1 = ctx.core.sram.allocate(win)
            ctx.core.sram.view(l1, win)[:] = window_data
            yield from ctx.noc_write_buffer_burst_uniform(
                dst_b, 0, n, batch, batch, l1, window=win)
            yield from ctx.noc_async_write_barrier()
        launch(device, [(writer_ranges, DATA_MOVER_0, {}),
                        (writer_uniform, DATA_MOVER_1, {})])
        assert np.array_equal(dst_a.read_host(), dst_b.read_host())
        assert np.array_equal(dst_a.read_host(),
                              window_data[np.arange(total) % win])

    def test_ranges_read_places_final_wrap(self, device, rng):
        """Reading through a window keeps only the final wrap, matching
        the uniform read path's cyclic placement."""
        win, size = 48, 112
        src = create_buffer(device, size, bank_id=0)
        data = rng.integers(0, 256, size, dtype=np.uint8)
        EnqueueWriteBuffer(device, src, data)
        got = {}

        def reader(ctx):
            l1 = ctx.core.sram.allocate(win)
            yield from ctx.noc_read_buffer_burst(
                src, [(0, size)], l1, window=win)
            yield from ctx.noc_async_read_barrier()
            got["window"] = ctx.core.sram.view(l1, win).copy()
        launch(device, [(reader, DATA_MOVER_0, {})])
        assert np.array_equal(got["window"], cyclic_placement(data, win))
