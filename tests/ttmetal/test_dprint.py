"""DPRINT cost model: free when the print server is detached, billed when on."""

import numpy as np

from repro.arch.tensix import DATA_MOVER_0
from repro.perfmodel.calibration import DEFAULT_COSTS
from repro.ttmetal import CreateKernel, EnqueueProgram, Finish, Program


def run(device, fn, args=None):
    prog = Program(device)
    CreateKernel(prog, fn, device.core(0, 0), DATA_MOVER_0, args or {})
    EnqueueProgram(device, prog, lint="off")
    return Finish(device)


def chatty_kernel(ctx):
    for i in range(10):
        yield from ctx.dprint(f"step {i}")
    yield from ctx.memcpy(64, 0, 32)


class TestDisabled:
    def test_costs_exactly_zero_time(self, device_factory):
        """A compiled-out DPRINT must not change the simulated runtime."""
        def quiet_kernel(ctx):
            yield from ctx.memcpy(64, 0, 32)
        t_with = run(device_factory(), chatty_kernel)
        t_without = run(device_factory(), quiet_kernel)
        assert t_with == t_without

    def test_no_messages_logged(self, device):
        run(device, chatty_kernel)
        assert device.dprint_log == []

    def test_dprint_is_still_a_generator(self, device):
        """The ``return``-before-``yield`` idiom must keep dprint yieldable
        so ``yield from ctx.dprint(...)`` works in both modes."""
        captured = {}

        def kernel(ctx):
            gen = ctx.dprint("x")
            captured["is_gen"] = hasattr(gen, "__next__")
            yield from gen
            yield from ctx.memcpy(64, 0, 32)
        run(device, kernel)
        assert captured["is_gen"]


class TestEnabled:
    def test_messages_logged_with_metadata(self, device):
        device.print_server_enabled = True
        run(device, chatty_kernel)
        assert len(device.dprint_log) == 10
        t, coord, slot, message = device.dprint_log[0]
        assert coord == (0, 0)
        assert slot == DATA_MOVER_0
        assert message == "step 0"

    def test_each_message_costs_dprint_cost(self, device_factory):
        dev_on = device_factory()
        dev_on.print_server_enabled = True
        t_on = run(dev_on, chatty_kernel)
        t_off = run(device_factory(), chatty_kernel)
        assert np.isclose(t_on - t_off, 10 * DEFAULT_COSTS.dprint_cost)
