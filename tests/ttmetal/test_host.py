"""Host API tests: program construction, enqueue, PCIe transfers."""

import numpy as np
import pytest

from repro.arch.tensix import COMPUTE, DATA_MOVER_0, DATA_MOVER_1
from repro.perfmodel.calibration import DEFAULT_COSTS
from repro.ttmetal import (
    CreateCircularBuffer,
    CreateKernel,
    EnqueueProgram,
    EnqueueReadBuffer,
    EnqueueWriteBuffer,
    Finish,
    Program,
    create_buffer,
)


def _idle(ctx):
    yield ctx.sim.timeout(1e-6)


class TestProgramConstruction:
    def test_duplicate_slot_rejected(self, device):
        prog = Program(device)
        core = device.core(0, 0)
        CreateKernel(prog, _idle, core, DATA_MOVER_0)
        with pytest.raises(ValueError, match="already has"):
            CreateKernel(prog, _idle, core, DATA_MOVER_0)

    def test_unknown_slot_rejected(self, device):
        prog = Program(device)
        with pytest.raises(ValueError, match="slot"):
            CreateKernel(prog, _idle, device.core(0, 0), "bogus")

    def test_storage_core_rejected(self, device):
        prog = Program(device)
        storage = device.core(0, 9)
        assert not storage.is_worker
        with pytest.raises(ValueError, match="storage-only"):
            CreateKernel(prog, _idle, storage, DATA_MOVER_0)

    def test_multi_core_kernel_binding(self, device):
        prog = Program(device)
        cores = [device.core(x, 0) for x in range(3)]
        CreateKernel(prog, _idle, cores, DATA_MOVER_0)
        assert len(prog.kernels) == 3
        assert len(prog.cores) == 3

    def test_empty_program_rejected(self, device):
        with pytest.raises(ValueError, match="no kernels"):
            EnqueueProgram(device, Program(device))

    def test_cb_creation_on_multiple_cores(self, device):
        prog = Program(device)
        cores = [device.core(x, 0) for x in range(2)]
        CreateCircularBuffer(prog, cores, 0, 64, 2)
        assert all(0 in c.cbs for c in cores)


class TestTransfers:
    def test_write_then_read_roundtrip(self, device, rng):
        buf = create_buffer(device, 1024)
        data = rng.integers(0, 256, 1024, dtype=np.uint8)
        EnqueueWriteBuffer(device, buf, data)
        assert np.array_equal(EnqueueReadBuffer(device, buf), data)

    def test_transfer_time_charged(self, device):
        buf = create_buffer(device, 1 << 18)
        t = EnqueueWriteBuffer(device, buf, np.zeros(1 << 18, dtype=np.uint8))
        c = DEFAULT_COSTS
        assert t >= (1 << 18) / c.pcie_bw

    def test_oversized_payload_rejected(self, device):
        buf = create_buffer(device, 64)
        with pytest.raises(ValueError, match="exceeds"):
            EnqueueWriteBuffer(device, buf, np.zeros(128, dtype=np.uint8))

    def test_typed_payload(self, device):
        buf = create_buffer(device, 64)
        EnqueueWriteBuffer(device, buf, np.arange(16, dtype=np.uint32))
        back = EnqueueReadBuffer(device, buf).view(np.uint32)
        assert np.array_equal(back, np.arange(16, dtype=np.uint32))


class TestExecution:
    def test_finish_reports_duration(self, device):
        prog = Program(device)
        CreateKernel(prog, _idle, device.core(0, 0), DATA_MOVER_0)
        handle = EnqueueProgram(device, prog)
        t = Finish(device)
        assert t == pytest.approx(1e-6)
        assert handle.duration_s == pytest.approx(1e-6)

    def test_duration_before_finish_raises(self, device):
        prog = Program(device)
        CreateKernel(prog, _idle, device.core(0, 0), DATA_MOVER_0)
        handle = EnqueueProgram(device, prog)
        with pytest.raises(RuntimeError):
            _ = handle.duration_s
        Finish(device)

    def test_energy_tracks_program(self, device):
        prog = Program(device)
        CreateKernel(prog, _idle, device.core(0, 0), DATA_MOVER_0)
        EnqueueProgram(device, prog)
        Finish(device)
        assert device.energy.energy_j > 0
        assert device.energy.active_cores == 0  # reset after Finish

    def test_finish_without_programs(self, device):
        assert Finish(device) == 0.0

    def test_sequential_programs(self, device):
        for _ in range(2):
            prog = Program(device)
            CreateKernel(prog, _idle, device.core(1, 1), DATA_MOVER_1)
            EnqueueProgram(device, prog)
            Finish(device)
        # two sequential 1 us programs
        assert device.sim.now >= 2e-6

    def test_compute_kernel_slot_gets_compute_ctx(self, device):
        seen = {}

        def k(ctx):
            seen["has_fpu"] = hasattr(ctx, "fpu")
            yield ctx.sim.timeout(0)
        prog = Program(device)
        CreateKernel(prog, k, device.core(0, 0), COMPUTE)
        EnqueueProgram(device, prog)
        Finish(device)
        assert seen["has_fpu"]
