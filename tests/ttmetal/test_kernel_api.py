"""Kernel-API tests: reads/writes/barriers/CBs/memcpy/semaphores in kernels."""

import numpy as np
import pytest

from repro.arch.tensix import COMPUTE, DATA_MOVER_0, DATA_MOVER_1
from repro.perfmodel.calibration import DEFAULT_COSTS
from repro.ttmetal import (
    CreateCircularBuffer,
    CreateKernel,
    CreateSemaphore,
    EnqueueProgram,
    EnqueueWriteBuffer,
    Finish,
    Program,
    create_buffer,
)
from repro.ttmetal.kernel_api import KernelError, NocAddr


def launch(device, kernels, cbs=(), sems=(), lint=None):
    """Helper: build and run a single-core program; returns wall time.

    ``lint="off"`` for tests that deliberately break the protocol to
    exercise the *runtime* error path the static verifier would preempt.
    """
    prog = Program(device)
    core = device.core(0, 0)
    for cb_id, page, pages in cbs:
        CreateCircularBuffer(prog, core, cb_id, page, pages)
    for sem_id, initial in sems:
        CreateSemaphore(prog, core, sem_id, initial)
    for fn, slot, args in kernels:
        CreateKernel(prog, fn, core, slot, args)
    EnqueueProgram(device, prog, lint=lint)
    return Finish(device)


class TestNocAddr:
    def test_pointer_arithmetic(self):
        a = NocAddr(3, 100)
        b = a + 28
        assert b == NocAddr(3, 128)


class TestReadsWrites:
    def test_read_into_l1(self, device, rng):
        buf = create_buffer(device, 256, bank_id=0)
        data = rng.integers(0, 256, 256, dtype=np.uint8)
        EnqueueWriteBuffer(device, buf, data)
        got = {}

        def reader(ctx):
            addr = ctx.get_noc_addr(*buf.noc_coords(), buf.addr)
            l1 = ctx.core.sram.allocate(256)
            yield from ctx.noc_async_read(addr, l1, 256)
            yield from ctx.noc_async_read_barrier()
            got["data"] = ctx.core.sram.view(l1, 256).copy()
        launch(device, [(reader, DATA_MOVER_0, {})])
        assert np.array_equal(got["data"], data)

    def test_write_from_l1(self, device):
        buf = create_buffer(device, 256, bank_id=0)

        def writer(ctx):
            l1 = ctx.core.sram.allocate(64)
            ctx.core.sram.view(l1, 64)[:] = 0x5A
            addr = ctx.get_noc_addr(*buf.noc_coords(), buf.addr + 32)
            yield from ctx.noc_async_write(l1, addr, 64)
            yield from ctx.noc_async_write_barrier()
        launch(device, [(writer, DATA_MOVER_1, {})])
        assert np.all(buf.read_host(32, 64) == 0x5A)

    def test_buffer_level_read_write(self, device, rng):
        src = create_buffer(device, 512, interleaved=True, page_size=128)
        dst = create_buffer(device, 512, interleaved=True, page_size=128)
        data = rng.integers(0, 256, 512, dtype=np.uint8)
        EnqueueWriteBuffer(device, src, data)

        def mover(ctx):
            l1 = ctx.core.sram.allocate(512)
            yield from ctx.noc_read_buffer(src, 0, l1, 512)
            yield from ctx.noc_async_read_barrier()
            yield from ctx.noc_write_buffer(dst, 0, l1, 512)
            yield from ctx.noc_async_write_barrier()
        launch(device, [(mover, DATA_MOVER_0, {})])
        assert np.array_equal(dst.read_host(), data)

    def test_barrier_with_nothing_outstanding(self, device):
        def k(ctx):
            yield from ctx.noc_async_read_barrier()
            yield from ctx.noc_async_write_barrier()
        launch(device, [(k, DATA_MOVER_0, {})])

    def test_unaligned_read_corrupts_through_api(self, device, rng):
        """The Section IV-B bug is visible through the kernel API too."""
        buf = create_buffer(device, 256, bank_id=0)
        data = rng.integers(0, 256, 256, dtype=np.uint8)
        EnqueueWriteBuffer(device, buf, data)
        got = {}

        def reader(ctx):
            addr = ctx.get_noc_addr(*buf.noc_coords(), buf.addr + 2)
            l1 = ctx.core.sram.allocate(64)
            yield from ctx.noc_async_read(addr, l1, 64)
            yield from ctx.noc_async_read_barrier()
            got["data"] = ctx.core.sram.view(l1, 64).copy()
        launch(device, [(reader, DATA_MOVER_0, {})])
        assert not np.array_equal(got["data"], data[2:66])
        assert np.array_equal(got["data"], data[0:64])  # shifted


class TestTiming:
    def test_sync_costs_more_than_nosync(self, device_factory):
        def make_kernel(sync):
            def reader(ctx):
                buf = ctx.arg("buf")
                l1 = ctx.core.sram.allocate(1024)
                yield from ctx.noc_read_buffer_burst(
                    buf, [(i * 64, 64) for i in range(16)], l1, sync=sync)
                yield from ctx.noc_async_read_barrier()
            return reader
        times = {}
        for sync in (False, True):
            dev = device_factory()
            buf = create_buffer(dev, 1024, bank_id=0)
            times[sync] = launch(dev, [(make_kernel(sync), DATA_MOVER_0,
                                        {"buf": buf})])
        extra = times[True] - times[False]
        assert extra == pytest.approx(16 * DEFAULT_COSTS.read_latency,
                                      rel=0.05)

    def test_noncontiguous_penalty_charged(self, device_factory):
        def make_kernel(stride):
            def reader(ctx):
                buf = ctx.arg("buf")
                l1 = ctx.core.sram.allocate(2048)
                yield from ctx.noc_read_buffer_burst_uniform(
                    buf, 0, 16, 64, stride, l1, window=2048)
                yield from ctx.noc_async_read_barrier()
            return reader
        times = {}
        for stride in (64, 128):
            dev = device_factory()
            buf = create_buffer(dev, 4096, bank_id=0)
            times[stride] = launch(
                dev, [(make_kernel(stride), DATA_MOVER_0, {"buf": buf})])
        assert times[128] > times[64]

    def test_busy_time_accounted(self, device):
        buf = create_buffer(device, 256, bank_id=0)

        def reader(ctx):
            l1 = ctx.core.sram.allocate(256)
            yield from ctx.noc_read_buffer(buf, 0, l1, 256)
            yield from ctx.noc_async_read_barrier()
        launch(device, [(reader, DATA_MOVER_0, {})])
        assert device.core(0, 0).busy_time[DATA_MOVER_0] > 0


class TestUniformFunctional:
    def test_uniform_read_matches_regular(self, device_factory, rng):
        data = rng.integers(0, 256, 2048, dtype=np.uint8)
        results = {}
        for mode in ("regular", "uniform"):
            dev = device_factory()
            buf = create_buffer(dev, 2048, bank_id=0)
            EnqueueWriteBuffer(dev, buf, data)

            def reader(ctx, mode=mode):
                l1 = ctx.core.sram.allocate(1024)
                if mode == "uniform":
                    yield from ctx.noc_read_buffer_burst_uniform(
                        buf, 0, 8, 128, 256, l1)
                else:
                    yield from ctx.noc_read_buffer_burst(
                        buf, [(i * 256, 128) for i in range(8)], l1)
                yield from ctx.noc_async_read_barrier()
                results[mode] = ctx.core.sram.view(l1, 1024).copy()
            launch(dev, [(reader, DATA_MOVER_0, {})])
        assert np.array_equal(results["regular"], results["uniform"])

    def test_uniform_write_scatter(self, device, rng):
        buf = create_buffer(device, 2048, bank_id=0)
        payload = rng.integers(0, 256, 512, dtype=np.uint8)

        def writer(ctx):
            l1 = ctx.core.sram.allocate(512)
            ctx.core.sram.view(l1, 512)[:] = payload
            yield from ctx.noc_write_buffer_burst_uniform(
                buf, 0, 4, 128, 512, l1)
            yield from ctx.noc_async_write_barrier()
        launch(device, [(writer, DATA_MOVER_1, {})])
        for i in range(4):
            assert np.array_equal(buf.read_host(i * 512, 128),
                                  payload[i * 128:(i + 1) * 128])


class TestMemcpy:
    def test_memcpy_moves_bytes(self, device):
        def k(ctx):
            a = ctx.core.sram.allocate(64)
            b = ctx.core.sram.allocate(64)
            ctx.core.sram.view(a, 64)[:] = 0x42
            yield from ctx.memcpy(b, a, 64)
            assert np.all(ctx.core.sram.view(b, 64) == 0x42)
        launch(device, [(k, DATA_MOVER_0, {})])

    def test_memcpy_rows_strided(self, device):
        def k(ctx):
            src = ctx.core.sram.allocate(256)
            dst = ctx.core.sram.allocate(64)
            for r in range(4):
                ctx.core.sram.view(src + r * 64, 16)[:] = r
            yield from ctx.memcpy_rows(dst, 16, src, 64, 16, 4)
            for r in range(4):
                assert np.all(ctx.core.sram.view(dst + r * 16, 16) == r)
        launch(device, [(k, DATA_MOVER_0, {})])

    def test_misaligned_memcpy_slower(self, device_factory):
        def make(src_off):
            def k(ctx):
                base = ctx.core.sram.allocate(4096, align=32)
                dst = ctx.core.sram.allocate(2048, align=32)
                yield from ctx.memcpy(dst, base + src_off, 1024)
            return k
        t = {}
        for off in (0, 2):
            dev = device_factory()
            t[off] = launch(dev, [(make(off), DATA_MOVER_0, {})])
        assert t[2] > t[0]

    def test_memcpy_rows_validates(self, device):
        def k(ctx):
            yield from ctx.memcpy_rows(0, 0, 0, 0, 16, 0)
        with pytest.raises(Exception):
            launch(device, [(k, DATA_MOVER_0, {})])


class TestCbAndSemaphores:
    def test_cb_flow_between_kernels(self, device):
        order = []

        def producer(ctx):
            yield from ctx.cb_reserve_back(0, 1)
            order.append("reserved")
            yield from ctx.cb_push_back(0, 1)

        def consumer(ctx):
            yield from ctx.cb_wait_front(0, 1)
            order.append("consumed")
            yield from ctx.cb_pop_front(0, 1)
        launch(device, [(producer, DATA_MOVER_0, {}),
                        (consumer, DATA_MOVER_1, {})],
               cbs=[(0, 64, 2)])
        assert order == ["reserved", "consumed"]

    def test_missing_cb_raises(self, device):
        def k(ctx):
            yield from ctx.cb_wait_front(7, 1)
        with pytest.raises(Exception) as ei:
            launch(device, [(k, DATA_MOVER_0, {})], lint="off")
        assert "no CB 7" in str(ei.value.__cause__)

    def test_semaphore_handoff(self, device):
        t_release = 0.0

        def waiter(ctx):
            yield from ctx.semaphore_wait(0, 1)
            assert ctx.sim.now >= t_release

        def poster(ctx):
            yield from ctx.semaphore_inc(0, 1)
        launch(device, [(waiter, DATA_MOVER_0, {}),
                        (poster, DATA_MOVER_1, {})],
               sems=[(0, 0)])

    def test_shared_semaphore_object(self, device):
        from repro.sim.resources import Semaphore
        shared = Semaphore(device.sim, value=0, name="global")

        def a(ctx):
            yield from ctx.semaphore_inc(shared, 1)

        def b(ctx):
            yield from ctx.semaphore_wait(shared, 1)
        launch(device, [(a, DATA_MOVER_0, {}), (b, DATA_MOVER_1, {})])

    def test_missing_semaphore_raises(self, device):
        def k(ctx):
            yield from ctx.semaphore_inc(3, 1)
        with pytest.raises(Exception) as ei:
            launch(device, [(k, DATA_MOVER_0, {})], lint="off")
        assert "no semaphore" in str(ei.value.__cause__)

    def test_missing_arg_raises(self, device):
        def k(ctx):
            ctx.arg("nonexistent")
            yield ctx.sim.timeout(0)
        with pytest.raises(Exception) as ei:
            launch(device, [(k, DATA_MOVER_0, {})], lint="off")
        assert "missing runtime arg" in str(ei.value.__cause__)

    def test_arg_default(self, device):
        seen = {}

        def k(ctx):
            seen["v"] = ctx.arg("opt", default=7)
            yield ctx.sim.timeout(0)
        launch(device, [(k, DATA_MOVER_0, {})])
        assert seen["v"] == 7


class TestSramWriteMulticast:
    def test_replicates_bytes_to_every_destination(self, device):
        grid = device.worker_grid(1, 3)[0]
        sender, dst_a, dst_b = grid

        def mcast(ctx):
            dsts = ctx.arg("dsts")
            src = ctx.core.sram.allocate(64, align=32)
            ctx.core.sram.view(src, 64)[:] = 0xA5
            yield from ctx.noc_sram_write_multicast(dsts, 0x9000, src, 64)
            yield from ctx.noc_async_write_barrier()

        prog = Program(device)
        CreateKernel(prog, mcast, sender, DATA_MOVER_0,
                     {"dsts": [dst_a, dst_b]})
        EnqueueProgram(device, prog)
        wall = Finish(device)
        assert wall > 0
        for dst in (dst_a, dst_b):
            assert (dst.sram.view(0x9000, 64) == 0xA5).all()
        # the source core's own window is untouched
        assert not (sender.sram.view(0x9000, 64) == 0xA5).all()

    def test_multicast_waits_at_the_write_barrier(self, device):
        """The replicated writes are async: the barrier must cover all
        of them, so bytes are visible right after it inside the kernel."""
        grid = device.worker_grid(1, 3)[0]
        sender, dst_a, dst_b = grid
        seen = {}

        def mcast(ctx):
            dsts = ctx.arg("dsts")
            src = ctx.core.sram.allocate(32, align=32)
            ctx.core.sram.view(src, 32)[:] = 0x5A
            yield from ctx.noc_sram_write_multicast(dsts, 0x400, src, 32)
            yield from ctx.noc_async_write_barrier()
            seen["landed"] = [bool((d.sram.view(0x400, 32) == 0x5A).all())
                              for d in dsts]

        prog = Program(device)
        CreateKernel(prog, mcast, sender, DATA_MOVER_0,
                     {"dsts": [dst_a, dst_b]})
        EnqueueProgram(device, prog)
        Finish(device)
        assert seen["landed"] == [True, True]

    def test_empty_destination_list_is_a_kernel_error(self, device):
        def bad(ctx):
            src = ctx.core.sram.allocate(32, align=32)
            yield from ctx.noc_sram_write_multicast([], 0x400, src, 32)

        with pytest.raises(Exception) as ei:
            launch(device, [(bad, DATA_MOVER_0, {})], lint="off")
        assert isinstance(ei.value.__cause__, KernelError)
        assert "destination" in str(ei.value.__cause__)
