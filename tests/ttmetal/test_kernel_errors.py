"""KernelError paths: bad CB/semaphore ids, missing args, bad slots, memcpy."""

import re

import pytest

from repro.arch.tensix import DATA_MOVER_0
from repro.sim import SimulationError
from repro.ttmetal import CreateKernel, EnqueueProgram, Finish, Program
from repro.ttmetal.kernel_api import DataMoverCtx, KernelError


def run_kernel(device, fn, args=None):
    prog = Program(device)
    CreateKernel(prog, fn, device.core(0, 0), DATA_MOVER_0, args or {})
    EnqueueProgram(device, prog, lint="off")
    return Finish(device)


def assert_kernel_error(device, fn, match, args=None):
    """A kernel bug crashes the sim with the KernelError as the cause."""
    with pytest.raises(SimulationError) as exc_info:
        run_kernel(device, fn, args)
    cause = exc_info.value.__cause__
    assert isinstance(cause, KernelError)
    assert re.search(match, str(cause))


class TestMissingIds:
    def test_missing_cb_id(self, device):
        def kernel(ctx):
            yield from ctx.cb_reserve_back(9, 1)
        assert_kernel_error(device, kernel, "9")

    def test_missing_semaphore_id(self, device):
        def kernel(ctx):
            yield from ctx.semaphore_inc(4, 1)
        assert_kernel_error(device, kernel, "4")

    def test_missing_runtime_arg(self, device):
        def kernel(ctx):
            value = ctx.arg("not_there")
            yield from ctx.memcpy(0, 64, value)
        assert_kernel_error(device, kernel, "not_there")

    def test_default_suppresses_missing_arg(self, device):
        def kernel(ctx):
            assert ctx.arg("not_there", default=17) == 17
            yield from ctx.memcpy(64, 0, 32)
        run_kernel(device, kernel)


class TestInvalidSlot:
    def test_bogus_data_mover_slot(self, device):
        with pytest.raises(KernelError, match="bogus"):
            DataMoverCtx(device.core(0, 0), "bogus")


class TestMemcpyRowsValidation:
    @pytest.mark.parametrize("rows,row_bytes", [(0, 64), (3, 0), (-1, 64)])
    def test_nonpositive_dimensions_rejected(self, device, rows, row_bytes):
        def kernel(ctx):
            yield from ctx.memcpy_rows(0, 128, 4096, 128, row_bytes, rows)
        assert_kernel_error(device, kernel, "positive")

    def test_valid_memcpy_rows_runs(self, device):
        def kernel(ctx):
            yield from ctx.memcpy_rows(0, 128, 4096, 128, 64, 3)
        run_kernel(device, kernel)
